package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/pkg/tcq"
)

// v1Server boots an 8x8 grid deployment with an auto-planning default
// behind an httptest server.
func v1Server(t *testing.T) *httptest.Server {
	t.Helper()
	srv, _ := newGridServer(t, 8, 8, 2, Config{DefaultEngine: tcq.EngineAuto, CacheCapacity: 256})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// postV1 fires one JSON POST and decodes the response into out,
// returning the status code.
func postV1(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp.StatusCode
}

func TestV1QueryCost(t *testing.T) {
	ts := v1Server(t)
	var vr V1QueryResponse
	status := postV1(t, ts.URL+"/v1/query", V1Request{
		Sources: []int{0}, Targets: []int{63}, Mode: "cost",
	}, &vr)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(vr.Answers) != 1 || !vr.Answers[0].Reachable || vr.Answers[0].Cost == nil {
		t.Fatalf("bad answer: %+v", vr.Answers)
	}
	if vr.Explain.Engine == "" || vr.Explain.Engine == "auto" {
		t.Fatalf("explain engine must be concrete, got %q", vr.Explain.Engine)
	}
	if vr.Explain.Canonical != "cost/"+vr.Explain.Engine {
		t.Fatalf("canonical %q", vr.Explain.Canonical)
	}

	// The legacy shim must agree with /v1 on the same pair — the
	// compatibility oracle for the rewiring.
	legacy, err := http.Get(ts.URL + "/query?src=0&dst=63")
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(legacy.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Reachable || qr.Cost == nil {
		t.Fatalf("legacy shim: %+v", qr)
	}
	if math.Abs(*qr.Cost-*vr.Answers[0].Cost) > 1e-9 {
		t.Fatalf("legacy cost %v != v1 cost %v", *qr.Cost, *vr.Answers[0].Cost)
	}
}

func TestV1QueryConnectivityAndSets(t *testing.T) {
	ts := v1Server(t)
	var vr V1QueryResponse
	status := postV1(t, ts.URL+"/v1/query", V1Request{
		Sources: []int{0, 1}, Targets: []int{62, 63}, Mode: "connectivity", Limit: 3,
	}, &vr)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(vr.Answers) != 3 || !vr.LimitHit {
		t.Fatalf("limit: got %d answers, limit_hit=%v", len(vr.Answers), vr.LimitHit)
	}
	for _, a := range vr.Answers {
		if !a.Reachable || a.Cost != nil {
			t.Fatalf("connectivity answer: %+v", a)
		}
	}
	if vr.Explain.Pairs != 4 {
		t.Fatalf("explain pairs = %d, want 4", vr.Explain.Pairs)
	}
}

func TestV1TypedErrorCodes(t *testing.T) {
	ts := v1Server(t)
	cases := []struct {
		name       string
		req        V1Request
		wantStatus int
		wantCode   string
	}{
		{"empty sources", V1Request{Targets: []int{1}}, http.StatusBadRequest, "invalid_request"},
		{"bad mode", V1Request{Sources: []int{0}, Targets: []int{1}, Mode: "teleport"}, http.StatusBadRequest, "unknown_mode"},
		{"bad engine", V1Request{Sources: []int{0}, Targets: []int{1}, Engine: "warp"}, http.StatusBadRequest, "unknown_engine"},
		{"bitset cost", V1Request{Sources: []int{0}, Targets: []int{1}, Mode: "cost", Engine: "bitset"}, http.StatusBadRequest, "engine_mismatch"},
		{"unknown node", V1Request{Sources: []int{0}, Targets: []int{9999}, Mode: "cost"}, http.StatusNotFound, "unknown_node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ve V1Error
			status := postV1(t, ts.URL+"/v1/query", tc.req, &ve)
			if status != tc.wantStatus || ve.Code != tc.wantCode {
				t.Fatalf("got status %d code %q (%s), want %d %q", status, ve.Code, ve.Error, tc.wantStatus, tc.wantCode)
			}
		})
	}
}

func TestV1Batch(t *testing.T) {
	ts := v1Server(t)
	var br V1BatchResponse
	status := postV1(t, ts.URL+"/v1/batch", V1BatchRequest{Requests: []V1Request{
		{Sources: []int{0}, Targets: []int{63}, Mode: "cost"},
		{Sources: []int{0}, Targets: []int{1}, Engine: "warp"}, // per-item failure
		{Sources: []int{63}, Targets: []int{0}, Mode: "connectivity"},
	}}, &br)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(br.Results) != 3 {
		t.Fatalf("got %d results", len(br.Results))
	}
	if br.Results[0].Response == nil || br.Results[0].Error != nil ||
		!br.Results[0].Response.Answers[0].Reachable {
		t.Fatalf("batch[0]: %+v", br.Results[0])
	}
	if br.Results[1].Error == nil || br.Results[1].Error.Code != "unknown_engine" {
		t.Fatalf("batch[1]: %+v", br.Results[1])
	}
	if br.Results[2].Response == nil || len(br.Results[2].Response.Answers) != 1 {
		t.Fatalf("batch[2]: %+v", br.Results[2])
	}

	// Batch bounds: empty and oversized bodies are refused whole.
	var ve V1Error
	if status := postV1(t, ts.URL+"/v1/batch", V1BatchRequest{}, &ve); status != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", status)
	}
	big := make([]V1Request, maxBatchRequests+1)
	for i := range big {
		big[i] = V1Request{Sources: []int{0}, Targets: []int{1}}
	}
	if status := postV1(t, ts.URL+"/v1/batch", V1BatchRequest{Requests: big}, &ve); status != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d", status)
	}
}

// TestV1CacheSharedWithLegacy asserts the leg cache serves both
// surfaces: a /v1 query warms the cache for the legacy shim and vice
// versa, because both key off the planner's canonical plan.
func TestV1CacheSharedWithLegacy(t *testing.T) {
	ts := v1Server(t)
	var first V1QueryResponse
	postV1(t, ts.URL+"/v1/query", V1Request{Sources: []int{0}, Targets: []int{63}, Mode: "cost"}, &first)
	if first.CacheMisses == 0 {
		t.Fatalf("cold query must miss, got %+v", first)
	}
	var second V1QueryResponse
	postV1(t, ts.URL+"/v1/query", V1Request{Sources: []int{0}, Targets: []int{62}, Mode: "cost"}, &second)
	if second.CacheHits == 0 {
		t.Fatalf("same-entry different-target query must hit the leg cache, got %+v", second)
	}
	resp, err := http.Get(ts.URL + "/query?src=0&dst=61")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.CacheHits == 0 {
		t.Fatalf("legacy shim must share the v1-warmed cache, got %+v", qr)
	}
}

// TestV1LoadDriver runs the in-process load generator over the v1
// surface — the same driver CI uses, exercising replay equality.
func TestV1LoadDriver(t *testing.T) {
	ts := v1Server(t)
	rep, err := RunLoad(LoadConfig{
		BaseURL:         ts.URL,
		Requests:        40,
		Parallel:        4,
		Nodes:           64,
		Seed:            3,
		Repeat:          2,
		API:             "v1",
		ExpectReachable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Mismatches != 0 {
		t.Fatalf("v1 load: %d errors, %d mismatches (first issue: %s)", rep.Errors, rep.Mismatches, rep.FirstIssue)
	}
	if rep.HitRate == 0 {
		t.Fatal("replayed v1 load must hit the leg cache")
	}
}

// TestFacadeCancellationThroughPools: a canceled context must surface
// as tcq.ErrCanceled through the server-backed facade (queued legs
// become no-ops, kernels abort between rounds).
func TestFacadeCancellationThroughPools(t *testing.T) {
	srv, _ := newGridServer(t, 8, 8, 2, Config{DefaultEngine: tcq.EngineAuto, CacheCapacity: 64})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := srv.Facade().Query(ctx, tcq.Request{Sources: []int{0}, Targets: []int{63}, Mode: tcq.ModeCost})
	if !errors.Is(err, tcq.ErrCanceled) {
		t.Fatalf("got %v, want tcq.ErrCanceled", err)
	}
}

// TestV1PairBound: a request spanning more pairs than maxQueryPairs is
// refused unless a limit brings the effective work under the bound.
func TestV1PairBound(t *testing.T) {
	ts := v1Server(t)
	wide := make([]int, 70)
	for i := range wide {
		wide[i] = i % 64
	}
	var ve V1Error
	status := postV1(t, ts.URL+"/v1/query", V1Request{Sources: wide, Targets: wide, Mode: "connectivity"}, &ve)
	if status != http.StatusBadRequest || ve.Code != "invalid_request" {
		t.Fatalf("unbounded pair product: status %d code %q", status, ve.Code)
	}
	var vr V1QueryResponse
	status = postV1(t, ts.URL+"/v1/query", V1Request{Sources: wide, Targets: wide, Mode: "connectivity", Limit: 5}, &vr)
	if status != http.StatusOK || len(vr.Answers) != 5 {
		t.Fatalf("limited wide request: status %d, %d answers", status, len(vr.Answers))
	}
}

// TestV1Update exercises the transactional write endpoint: a
// multi-op batch lands atomically in one epoch, reports the
// incremental rebuild (touched fragment rebuilt, the rest shared),
// and the next query reflects it.
func TestV1Update(t *testing.T) {
	ts := v1Server(t)
	var ur V1UpdateResponse
	status := postV1(t, ts.URL+"/v1/update", V1UpdateRequest{Ops: []V1UpdateOp{
		{Op: "insert", Fragment: 0, From: 0, To: 63, Weight: 0.5},
		{Op: "insert", Fragment: 0, From: 0, To: 62, Weight: 0.75},
	}}, &ur)
	if status != http.StatusOK {
		t.Fatalf("status %d: %+v", status, ur)
	}
	if ur.Epoch != 1 || ur.Applied != 2 {
		t.Fatalf("epoch %d applied %d, want 1 and 2", ur.Epoch, ur.Applied)
	}
	if len(ur.RebuiltFragments) == 0 {
		t.Fatalf("no rebuilt fragments reported: %+v", ur)
	}
	var vr V1QueryResponse
	if s := postV1(t, ts.URL+"/v1/query", V1Request{Sources: []int{0}, Targets: []int{63}, Mode: "cost"}, &vr); s != http.StatusOK {
		t.Fatalf("query after update: status %d", s)
	}
	if vr.Answers[0].Cost == nil || math.Abs(*vr.Answers[0].Cost-0.5) > 1e-9 {
		t.Fatalf("cost after batched shortcut = %v, want 0.5", vr.Answers[0].Cost)
	}

	// An atomically refused batch: per-op typed codes, nothing applied.
	var ue V1UpdateError
	status = postV1(t, ts.URL+"/v1/update", V1UpdateRequest{Ops: []V1UpdateOp{
		{Op: "delete", Fragment: 0, From: 0, To: 63, Weight: 0.5},
		{Op: "insert", Fragment: 0, From: 0, To: 999999, Weight: 1},
		{Op: "delete", Fragment: 0, From: 5, To: 6, Weight: 123},
	}}, &ue)
	if status != http.StatusNotFound || ue.Code != "batch_refused" {
		t.Fatalf("refused batch: status %d code %q", status, ue.Code)
	}
	if len(ue.Ops) != 2 || ue.Ops[0].Index != 1 || ue.Ops[0].Code != "unknown_node" ||
		ue.Ops[1].Index != 2 || ue.Ops[1].Code != "edge_not_found" {
		t.Fatalf("per-op errors: %+v", ue.Ops)
	}
	// Atomic: the valid delete of op 0 must NOT have landed.
	var vr2 V1QueryResponse
	postV1(t, ts.URL+"/v1/query", V1Request{Sources: []int{0}, Targets: []int{63}, Mode: "cost"}, &vr2)
	if vr2.Answers[0].Cost == nil || math.Abs(*vr2.Answers[0].Cost-0.5) > 1e-9 {
		t.Fatalf("refused batch partially applied: cost %v, want 0.5", vr2.Answers[0].Cost)
	}

	// Malformed envelopes.
	var ve V1Error
	if s := postV1(t, ts.URL+"/v1/update", V1UpdateRequest{}, &ve); s != http.StatusBadRequest || ve.Code != "invalid_request" {
		t.Fatalf("empty ops: status %d code %q", s, ve.Code)
	}
	var ue2 V1UpdateError
	if s := postV1(t, ts.URL+"/v1/update", V1UpdateRequest{Ops: []V1UpdateOp{{Op: "upsert"}}}, &ue2); s != http.StatusBadRequest || len(ue2.Ops) != 1 {
		t.Fatalf("unknown op verb: status %d %+v", s, ue2)
	}
}

// TestFacadeMutationsShareServerDataset: the server-backed facade
// mutates through the shared dataset, so the server's eager cache
// invalidation and update counters fire for facade-applied batches,
// and QueryPath reads a pinned immutable snapshot safely.
func TestFacadeMutationsShareServerDataset(t *testing.T) {
	srv, _ := newGridServer(t, 6, 6, 2, Config{DefaultEngine: tcq.EngineAuto, CacheCapacity: 64})
	if _, err := srv.Facade().InsertEdge(0, 0, 1, 0.25); err != nil {
		t.Fatalf("InsertEdge through facade: %v", err)
	}
	if _, err := srv.Facade().DeleteEdge(0, 0, 1, 0.25); err != nil {
		t.Fatalf("DeleteEdge through facade: %v", err)
	}
	st := srv.Stats()
	if st.Updates != 2 || st.Epoch != 2 {
		t.Fatalf("updates = %d epoch = %d, want 2 and 2 (facade batches must hit the server's dataset)", st.Updates, st.Epoch)
	}
	if st.Cache.Sweeps != 2 {
		t.Fatalf("cache sweeps = %d, want 2 (facade batches must invalidate eagerly)", st.Cache.Sweeps)
	}
	if _, route, err := srv.Facade().QueryPath(context.Background(), 0, 35); err != nil || len(route.Nodes) == 0 {
		t.Fatalf("QueryPath on server-backed facade: route %v, err %v", route, err)
	}
}
