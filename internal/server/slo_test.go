package server

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func f64(v float64) *float64 { return &v }

// TestSLOEvaluation covers the gate arithmetic: within-budget passes,
// each dimension violates independently, nil dimensions are ignored.
func TestSLOEvaluation(t *testing.T) {
	rep := &LoadReport{
		Requests: 200,
		Errors:   1,
		P99:      40 * time.Millisecond,
		WriteP99: 900 * time.Millisecond,
	}
	ok := rep.SLO(SLOBudget{ReadP99Ms: f64(50), WriteP99Ms: f64(1000), ErrorRate: f64(0.01)})
	if !ok.Pass || len(ok.Violations) != 0 {
		t.Errorf("within-budget run failed: %+v", ok)
	}
	if ok.ReadP99Ms != 40 || ok.WriteP99Ms != 900 || ok.ErrorRate != 0.005 {
		t.Errorf("measured values wrong: %+v", ok)
	}

	bad := rep.SLO(SLOBudget{ReadP99Ms: f64(39.9), WriteP99Ms: f64(899), ErrorRate: f64(0)})
	if bad.Pass || len(bad.Violations) != 3 {
		t.Errorf("over-budget run passed: %+v", bad)
	}

	// Nil dimensions stay unchecked: a read-only budget ignores writes.
	readOnly := rep.SLO(SLOBudget{ReadP99Ms: f64(50)})
	if !readOnly.Pass {
		t.Errorf("read-only budget flagged write latency: %+v", readOnly)
	}
	if rep.SLO(SLOBudget{}).Pass != true {
		t.Error("empty budget must pass")
	}
}

// TestLoadSLOBudget round-trips the committed SLO.json shape and
// rejects unknown keys (a typoed budget must not silently un-gate CI).
func TestLoadSLOBudget(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "SLO.json")
	if err := os.WriteFile(good, []byte(`{"read_p99_ms": 250, "write_p99_ms": 5000, "error_rate": 0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadSLOBudget(good)
	if err != nil {
		t.Fatal(err)
	}
	if b.ReadP99Ms == nil || *b.ReadP99Ms != 250 || b.WriteP99Ms == nil || *b.WriteP99Ms != 5000 ||
		b.ErrorRate == nil || *b.ErrorRate != 0 {
		t.Errorf("budget decoded wrong: %+v", b)
	}
	if b.Empty() {
		t.Error("populated budget reported Empty")
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"read_p99_msec": 250}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSLOBudget(bad); err == nil {
		t.Error("unknown budget key accepted")
	}

	// The committed repo budget must itself parse and be non-empty.
	repoBudget, err := LoadSLOBudget("../../SLO.json")
	if err != nil {
		t.Fatalf("committed SLO.json: %v", err)
	}
	if repoBudget.Empty() {
		t.Error("committed SLO.json budgets nothing")
	}
}

// TestRunLoadDuration: a Duration keeps the load replaying past Repeat
// and the report carries the scraped /metrics (so the exposition
// format parsed).
func TestRunLoadDuration(t *testing.T) {
	srv, _ := newGridServer(t, 8, 8, 4, Config{CacheCapacity: 256})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := RunLoad(LoadConfig{
		BaseURL:  ts.URL,
		Requests: 5,
		Parallel: 2,
		Nodes:    64,
		Repeat:   1,
		Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passes < 2 {
		t.Errorf("duration run made %d passes, want > 1", rep.Passes)
	}
	if rep.Requests != 5*rep.Passes {
		t.Errorf("requests = %d, want %d", rep.Requests, 5*rep.Passes)
	}
	if rep.Mismatches != 0 || rep.Errors != 0 {
		t.Errorf("replay oracle tripped under duration mode: %+v", rep)
	}
	if len(rep.Metrics) < 10 {
		t.Errorf("report scraped %d metric series, want >= 10", len(rep.Metrics))
	}
	if rep.Metrics["tc_legcache_hits_total"] <= 0 {
		t.Errorf("scrape shows no cache hits after replay passes")
	}
}
