package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// metricname pins the observability catalog contract from PR 6:
// every series registered through internal/metrics carries the tc_
// namespace prefix, the Prometheus unit suffix its type implies
// (counters end in _total, latency histograms in _seconds), a
// compile-time-constant name, and constant label keys — and each name
// appears in the README metric catalog, so dashboards, the CI metric
// asserts (grep '^tc_...' over /metrics scrapes) and the docs can
// never drift apart. A dynamic name or label key would also be a
// cardinality hazard: the registry renders every family it is ever
// handed.

// metricMethods maps each Registry registration method to the unit
// suffix its metric type mandates ("" = no suffix constraint).
var metricMethods = map[string]string{
	"Counter":      "_total",
	"CounterVec":   "_total",
	"CounterFunc":  "_total",
	"Gauge":        "",
	"GaugeVec":     "",
	"GaugeFunc":    "",
	"Histogram":    "_seconds",
	"HistogramVec": "_seconds",
}

// metricLabelStart gives the index of the first label-key argument
// for the Vec registration methods.
var metricLabelStart = map[string]int{
	"CounterVec":   2,
	"GaugeVec":     2,
	"HistogramVec": 3, // (name, help, buckets, labels...)
}

// MetricName returns the metric-naming analyzer. catalog is the set
// of metric names documented in the README; nil disables the
// documentation cross-check.
func MetricName(catalog map[string]bool) *Analyzer {
	return &Analyzer{
		Name:      "metricname",
		Doc:       "metrics registered via internal/metrics use constant tc_-prefixed names with _total/_seconds unit suffixes, constant label keys, and appear in the README catalog",
		NeedTypes: true,
		Run: func(pass *Pass) {
			runMetricName(pass, catalog)
		},
	}
}

func runMetricName(pass *Pass, catalog map[string]bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, ok := registryMethod(pass.Info, call)
			if !ok {
				return true
			}
			checkMetricCall(pass, call, method, catalog)
			return true
		})
	}
}

// registryMethod reports whether call invokes a registration method
// on *repro/internal/metrics.Registry, returning the method name.
func registryMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, tracked := metricMethods[sel.Sel.Name]; !tracked {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/metrics") {
		return "", false
	}
	return sel.Sel.Name, true
}

// constStringValue extracts an argument's compile-time string value.
func constStringValue(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkMetricCall applies the naming contract to one registration.
func checkMetricCall(pass *Pass, call *ast.CallExpr, method string, catalog map[string]bool) {
	if len(call.Args) == 0 {
		return
	}
	name, ok := constStringValue(pass.Info, call.Args[0])
	if !ok {
		pass.Reportf(call.Args[0].Pos(),
			"metric name passed to Registry.%s must be a compile-time constant: dynamic names defeat the catalog and risk unbounded series cardinality", method)
		return
	}
	if !strings.HasPrefix(name, "tc_") {
		pass.Reportf(call.Args[0].Pos(),
			"metric %q lacks the tc_ namespace prefix every series of this system carries", name)
	}
	if suffix := metricMethods[method]; suffix != "" && !strings.HasSuffix(name, suffix) {
		pass.Reportf(call.Args[0].Pos(),
			"metric %q registered via Registry.%s must end in %q (the Prometheus unit suffix for its type)", name, method, suffix)
	}
	if start, isVec := metricLabelStart[method]; isVec {
		if call.Ellipsis.IsValid() {
			pass.Reportf(call.Ellipsis,
				"label keys for metric %q must be spelled as constants at the registration site, not splatted from a slice", name)
		}
		for i := start; i < len(call.Args); i++ {
			if _, ok := constStringValue(pass.Info, call.Args[i]); !ok {
				pass.Reportf(call.Args[i].Pos(),
					"label key %d of metric %q must be a compile-time constant: dynamic label keys are a series-cardinality hazard", i-start, name)
			}
		}
	}
	if catalog != nil && strings.HasPrefix(name, "tc_") && !catalog[name] {
		pass.Reportf(call.Args[0].Pos(),
			"metric %q is not documented in the README metric catalog; add it so dashboards and CI asserts cannot drift", name)
	}
}
