package analysis

import "testing"

// The per-analyzer golden-fixture tests. Untyped fixtures borrow the
// real import path their analyzer is scoped to; typed fixtures live
// under unique repro/fixture/... paths so the shared loader can cache
// the stdlib across them.

func TestImportBoundaryFixtures(t *testing.T) {
	cases := []struct{ fixture, asPath string }{
		{"importboundary_badcmd", "repro/cmd/badtool"},
		{"importboundary_badcluster", "repro/internal/cluster"},
		{"importboundary_badmetrics", "repro/internal/metrics"},
		{"importboundary_good", "repro/cmd/goodtool"},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			checkFixture(t, ImportBoundary(), loadFixture(t, c.fixture, c.asPath, false))
		})
	}
}

func TestInjectedClockFixtures(t *testing.T) {
	cases := []struct{ fixture, asPath string }{
		{"injectedclock_bad", "repro/internal/cluster"},
		{"injectedclock_good", "repro/internal/cluster"},
		{"injectedclock_unscoped", "repro/internal/server"},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			checkFixture(t, InjectedClock(), loadFixture(t, c.fixture, c.asPath, false))
		})
	}
}

func TestDrainCloserFixtures(t *testing.T) {
	cases := []struct{ fixture, asPath string }{
		{"draincloser_bad", "repro/fixture/draincloserbad"},
		{"draincloser_good", "repro/fixture/drainclosergood"},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			checkFixture(t, DrainCloser(), loadFixture(t, c.fixture, c.asPath, true))
		})
	}
}

func TestTypedErrFixtures(t *testing.T) {
	cases := []struct{ fixture, asPath string }{
		{"typederr_bad", "repro/internal/cluster"},
		{"typederr_unscoped", "repro/internal/graph"},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			checkFixture(t, TypedErr(), loadFixture(t, c.fixture, c.asPath, false))
		})
	}
}

func TestMetricNameFixtures(t *testing.T) {
	catalog := map[string]bool{
		// Names the bad fixture registers whose ONLY defect is
		// something other than documentation, plus everything the good
		// fixture registers.
		"tc_fixture_requests":       true,
		"tc_fixture_latency_ms":     true,
		"tc_fixture_rpcs_total":     true,
		"tc_fixture_state":          true,
		"tc_fixture_requests_total": true,
		"tc_fixture_peers":          true,
		"tc_fixture_step_seconds":   true,
		"tc_fixture_rpc_seconds":    true,
		"tc_fixture_evals_total":    true,
	}
	cases := []struct{ fixture, asPath string }{
		{"metricname_bad", "repro/fixture/metricnamebad"},
		{"metricname_good", "repro/fixture/metricnamegood"},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			checkFixture(t, MetricName(catalog), loadFixture(t, c.fixture, c.asPath, true))
		})
	}
}
