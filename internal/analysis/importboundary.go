package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// importboundary enforces the layering that PR 4 fought for and
// CHANGES.md only claims: the execution planner (internal/dsa) is
// reachable through the pkg/tcq facade and the few engine-adjacent
// internals, never from binaries or examples; the serving layer sits
// above the cluster layer, never below it; and the metrics exporter
// stays zero-dependency. The rules are allowlists — adding a new
// legitimate importer is a deliberate one-line change here, reviewed
// as such, instead of an accidental import that quietly collapses a
// layer.

// boundaryRule restricts who may import target.
type boundaryRule struct {
	// target is the restricted import path.
	target string
	// allowed lists the import paths (exact, or prefix when ending in
	// "/") permitted to import target.
	allowed []string
	// why completes the diagnostic: the layering fact the rule
	// preserves.
	why string
}

// boundaryRules is the project's layering contract. Test files are
// exempt wholesale (the loader never parses them): oracles and
// fixtures legitimately reach across layers.
var boundaryRules = []boundaryRule{
	{
		target: "repro/internal/dsa",
		allowed: []string{
			"repro/pkg/tcq",          // the public facade over the planner
			"repro/internal/server",  // the serving executor behind the facade
			"repro/internal/cluster", // maps dsa sentinels across the wire
			"repro/internal/bench",   // benchmarks measure the planner directly
			"repro/internal/phe",     // paper-era harness predating the facade
			"repro/internal/sim",     // paper-era harness predating the facade
			"repro/internal/store",   // (de)serializes built stores CSR-natively
		},
		why: "the planner is internal; binaries and examples go through pkg/tcq (PR 4 removed every other import)",
	},
	{
		target: "repro/internal/store",
		allowed: []string{
			"repro/pkg/tcq", // the persistence facade (snapshots, durable applies)
		},
		why: "the persistence subsystem is reached through pkg/tcq's snapshot and store API; direct use would bypass the journal ordering the facade enforces",
	},
	{
		target: "repro/internal/server",
		allowed: []string{
			"repro/cmd/tcserver",   // the serving daemon
			"repro/cmd/tcload",     // the load driver over the server's wire types
			"repro/internal/bench", // serving/cluster benchmarks boot real servers
		},
		why: "the serving layer is the top of the stack; lower layers importing it would invert the architecture",
	},
	{
		target: "repro/internal/cluster",
		allowed: []string{
			"repro/internal/server", // owns the scatter half of scatter-gather
			"repro/pkg/tcq",         // re-exports the typed peer-error taxonomy
			"repro/internal/bench",  // cluster benchmarks build coordinators
			"repro/cmd/tcserver",    // parses -peers / -fault-script flags
		},
		why: "cluster sits under the serving layer; new importers are a deliberate layering decision",
	},
}

// zeroDepPkgs must import nothing from the module: their whole value
// is that they can never drag the tree into a cycle or a dependency.
var zeroDepPkgs = map[string]string{
	"repro/internal/metrics": "the Prometheus exporter is zero-dependency by contract (PR 6); importing the module from it risks cycles and breaks that promise",
}

// ImportBoundary returns the layering analyzer.
func ImportBoundary() *Analyzer {
	return &Analyzer{
		Name: "importboundary",
		Doc:  "enforce the package layering: internal/dsa behind pkg/tcq, server above cluster, metrics zero-dependency",
		Run:  runImportBoundary,
	}
}

func runImportBoundary(pass *Pass) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := zeroDepPkgs[pass.PkgPath]; ok && (path == "repro" || strings.HasPrefix(path, "repro/")) {
				pass.Reportf(imp.Pos(), "package %s must not import %s: %s", pass.PkgPath, path, why)
				continue
			}
			for _, rule := range boundaryRules {
				if path != rule.target || allowedImporter(pass.PkgPath, rule.allowed) {
					continue
				}
				pass.Reportf(imp.Pos(), "package %s must not import %s: %s", pass.PkgPath, rule.target, rule.why)
			}
		}
	}
}

// allowedImporter reports whether pkg appears in the allowlist.
func allowedImporter(pkg string, allowed []string) bool {
	for _, a := range allowed {
		if pkg == a || (strings.HasSuffix(a, "/") && strings.HasPrefix(pkg, a)) {
			return true
		}
	}
	return false
}

// importName returns the local name an import is bound to in a file:
// the explicit alias, or the path's last element.
func importName(imp *ast.ImportSpec) string {
	if imp.Name != nil {
		return imp.Name.Name
	}
	path, err := strconv.Unquote(imp.Path.Value)
	if err != nil {
		return ""
	}
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// fileImports maps each local import name of f to its import path —
// the syntactic resolution the untyped analyzers use to recognise
// qualified references like time.Now.
func fileImports(f *ast.File) map[string]string {
	out := map[string]string{}
	for _, imp := range f.Imports {
		if name := importName(imp); name != "" && name != "_" && name != "." {
			path, err := strconv.Unquote(imp.Path.Value)
			if err == nil {
				out[name] = path
			}
		}
	}
	return out
}
