package analysis

import (
	"go/ast"
)

// injectedclock guards the breaker and retry state machines'
// testability contract from PR 8: every timing decision in
// internal/cluster flows through the injected Config.Clock (breaker
// open-interval arithmetic) or sleepCtx (retry backoff), so tests can
// drive closed → open → half-open transitions and backoff schedules
// deterministically, without sleeping. One bare time.Now or
// time.Sleep in that package re-introduces wall-clock coupling and
// turns a deterministic state-machine test back into a flake. The
// two legitimate exceptions — the default wiring that SELECTS
// time.Now when no clock is injected, and latency stamps around RPCs
// (measurement, not control flow) — carry explicit suppressions.

// clockScopedPkgs are the packages whose state machines require an
// injected clock.
var clockScopedPkgs = map[string]bool{
	"repro/internal/cluster": true,
}

// bannedClockCalls are the time package functions that read or block
// on the wall clock. time.NewTimer is deliberately absent: it is the
// primitive sleepCtx itself is built on, and it only ever appears
// behind that seam.
var bannedClockCalls = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
}

// InjectedClock returns the clock-injection analyzer.
func InjectedClock() *Analyzer {
	return &Analyzer{
		Name: "injectedclock",
		Doc:  "no bare time.Now/Sleep/After in internal/cluster: breaker and retry timing must flow through Config.Clock or sleepCtx",
		Run:  runInjectedClock,
	}
}

func runInjectedClock(pass *Pass) {
	if !clockScopedPkgs[pass.PkgPath] {
		return
	}
	for _, f := range pass.Files {
		imports := fileImports(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok || imports[ident.Name] != "time" || !bannedClockCalls[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"bare %s.%s in %s: breaker/retry timing must flow through Config.Clock or sleepCtx so state-machine tests stay deterministic (latency stamps take a //tcvet:ignore with a reason)",
				ident.Name, sel.Sel.Name, pass.PkgPath)
			return true
		})
	}
}
