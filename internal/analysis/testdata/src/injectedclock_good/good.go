// Fixture: the sanctioned patterns — an injected clock field for
// reads, and time.NewTimer (the primitive sleepCtx is built on) for
// waiting. Analyzed as repro/internal/cluster; no diagnostics
// expected.
package cluster

import "time"

type breaker struct {
	clock func() time.Time
}

func (b *breaker) stamp() time.Time { return b.clock() }

func wait(d time.Duration) {
	timer := time.NewTimer(d)
	<-timer.C
	timer.Stop()
}
