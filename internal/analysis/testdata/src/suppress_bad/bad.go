// Fixture: every way a suppression can rot — a reason-less
// directive, an unknown analyzer name, and a directive with nothing
// left to silence. Malformed directives suppress nothing, so the
// findings they sit on surface too. Analyzed as
// repro/internal/cluster.
package cluster

import "time"

//tcvet:ignore draincloser fixture: nothing here for this analyzer to flag

func noReason() time.Time {
	return time.Now() //tcvet:ignore injectedclock
}

func unknownAnalyzer() time.Time {
	return time.Now() //tcvet:ignore clockcheck typo in the analyzer name
}
