// Fixture: every suppression form doing its job — a same-line
// directive, a line-above directive, and a whole-file exemption.
// Analyzed as repro/internal/cluster; RunSuite must return nothing.
package cluster

import (
	"fmt"
	"time"
)

//tcvet:ignore-file typederr fixture: client-side file, errors never cross the wire

func stamp() time.Time {
	return time.Now() //tcvet:ignore injectedclock fixture: latency stamp, measurement not control flow
}

func above() error {
	//tcvet:ignore injectedclock fixture: directive on the line above
	t := time.Now()
	return fmt.Errorf("at %v", t)
}
