// Fixture: bare time.Now outside the scoped package. Analyzed as
// repro/internal/server, where the clock-injection contract does not
// apply; no diagnostics expected.
package server

import "time"

func stamp() time.Time { return time.Now() }
