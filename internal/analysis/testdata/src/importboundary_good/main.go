// Fixture: a binary using the sanctioned surfaces — the pkg/tcq
// facade and an unrestricted internal helper. Analyzed as
// repro/cmd/goodtool; no diagnostics expected.
package main

import (
	_ "repro/internal/graph"
	_ "repro/pkg/tcq"
)
