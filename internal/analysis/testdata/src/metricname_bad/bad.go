// Fixture: every way a metric registration can break the catalog
// contract — missing namespace, missing unit suffix, dynamic name,
// dynamic and splatted label keys, and an undocumented series.
package metricfixture

import "repro/internal/metrics"

func register(reg *metrics.Registry, dyn string) {
	reg.Counter("fixture_requests_total", "no namespace")         // want "lacks the tc_ namespace prefix"
	reg.Counter("tc_fixture_requests", "no unit suffix")          // want "must end in \"_total\""
	reg.Histogram("tc_fixture_latency_ms", "wrong unit", nil)     // want "must end in \"_seconds\""
	reg.Gauge(dyn, "dynamic name")                                // want "must be a compile-time constant"
	reg.CounterVec("tc_fixture_rpcs_total", "dynamic label", dyn) // want "label key 0"
	labels := []string{"peer"}
	reg.GaugeVec("tc_fixture_state", "splatted labels", labels...) // want "splatted from a slice" "label key 0"
	reg.Gauge("tc_fixture_undocumented", "not in catalog")         // want "not documented in the README metric catalog"
}
