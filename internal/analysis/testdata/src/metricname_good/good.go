// Fixture: compliant registrations — constant tc_-prefixed names
// (literal and named constant), correct unit suffixes, constant label
// keys, all present in the injected catalog. No diagnostics expected.
package metricfixture

import "repro/internal/metrics"

const latencyName = "tc_fixture_step_seconds"

func register(reg *metrics.Registry) {
	reg.Counter("tc_fixture_requests_total", "requests served")
	reg.Gauge("tc_fixture_peers", "live peers")
	reg.Histogram(latencyName, "step latency", nil)
	reg.HistogramVec("tc_fixture_rpc_seconds", "rpc latency", nil, "peer", "verb")
	reg.CounterFunc("tc_fixture_evals_total", "evaluations", func() float64 { return 0 })
}
