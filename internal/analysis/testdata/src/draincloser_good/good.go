// Fixture: the sanctioned response-body patterns — close-and-drain
// around a decoder, ReadAll (a full read), ownership transfer by
// returning the response, and the caller-owns-Close parameter case.
// No diagnostics expected.
package draincloser

import (
	"encoding/json"
	"io"
	"net/http"
)

func fetch(c *http.Client) (map[string]int, error) {
	resp, err := c.Get("http://peer/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]int
	err = json.NewDecoder(resp.Body).Decode(&out)
	io.Copy(io.Discard, resp.Body)
	return out, err
}

func slurp(c *http.Client) ([]byte, error) {
	resp, err := c.Get("http://peer/blob")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func handoff(c *http.Client) (*http.Response, error) {
	resp, err := c.Get("http://peer/stream")
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func decodeParam(resp *http.Response) (map[string]int, error) {
	var out map[string]int
	err := json.NewDecoder(resp.Body).Decode(&out)
	io.Copy(io.Discard, resp.Body)
	return out, err
}
