// Fixture: the two response-body bugs — a never-closed body, and the
// PR 8 keep-alive killer (Decode without draining the remainder).
package draincloser

import (
	"encoding/json"
	"net/http"
)

func leak(c *http.Client) error {
	resp, err := c.Get("http://peer/stats") // want "never closed"
	if err != nil {
		return err
	}
	var out map[string]int
	return json.NewDecoder(resp.Body).Decode(&out) // want "keep-alive reuse dies"
}

func closedButUndrained(c *http.Client) error {
	resp, err := c.Get("http://peer/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out map[string]int
	return json.NewDecoder(resp.Body).Decode(&out) // want "keep-alive reuse dies"
}
