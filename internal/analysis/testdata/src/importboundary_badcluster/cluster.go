// Fixture: the cluster layer importing the serving layer above it —
// the architecture inversion the rule forbids. Analyzed as
// repro/internal/cluster.
package cluster

import (
	_ "repro/internal/server" // want "must not import repro/internal/server"
)
