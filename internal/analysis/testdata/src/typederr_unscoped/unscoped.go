// Fixture: the same shapes outside the wire-boundary packages.
// Analyzed as repro/internal/graph; no diagnostics expected.
package graph

import (
	"errors"
	"fmt"
)

func parse(v string) error {
	if v == "" {
		return errors.New("empty value")
	}
	return fmt.Errorf("bad value %q", v)
}
