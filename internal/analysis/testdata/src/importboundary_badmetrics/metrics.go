// Fixture: the zero-dependency metrics exporter growing a module
// dependency. Analyzed as repro/internal/metrics.
package metrics

import (
	_ "repro/internal/relation" // want "must not import repro/internal/relation"
)
