// Fixture: wire-boundary errors that escape the typed taxonomy — a
// function-local errors.New and fmt.Errorf calls (including a
// concatenated format) with no %w. Analyzed as repro/internal/cluster.
package cluster

import (
	"errors"
	"fmt"
)

// ErrFixture is a package-level sentinel: minting here is legal.
var ErrFixture = errors.New("fixture sentinel")

func parse(v string) error {
	if v == "" {
		return errors.New("empty value") // want "unmatchable one-off"
	}
	if v == "?" {
		return fmt.Errorf("bad "+"value %q", v) // want "without %w drops the typed taxonomy"
	}
	return fmt.Errorf("bad value %q", v) // want "without %w drops the typed taxonomy"
}

func wrap(err error) error {
	return fmt.Errorf("parse: "+"%w", err)
}
