// Fixture: a binary reaching under the pkg/tcq facade straight into
// the planner. Analyzed as repro/cmd/badtool.
package main

import (
	_ "repro/internal/dsa" // want "must not import repro/internal/dsa"
)
