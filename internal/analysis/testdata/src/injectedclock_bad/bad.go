// Fixture: bare wall-clock reads inside the breaker/retry package,
// including through an import alias. Analyzed as
// repro/internal/cluster.
package cluster

import (
	"time"

	wall "time"
)

func stamps() time.Time {
	time.Sleep(time.Millisecond)   // want "bare time.Sleep"
	<-time.After(time.Millisecond) // want "bare time.After"
	return wall.Now()              // want "bare wall.Now"
}
