package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

func TestMetricCatalogFromReadme(t *testing.T) {
	readme := filepath.Join(t.TempDir(), "README.md")
	body := "| `tc_queries_total` | counter |\n" +
		"| `tc_legcache_{hits,misses}_total` | counter |\n" +
		"| `tc_rpc_{leg,update}_{sent,failed}_total` | counter |\n" +
		"Plain prose mentioning tc_epoch too.\n"
	if err := os.WriteFile(readme, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	catalog, err := MetricCatalogFromReadme(readme)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"tc_queries_total",
		"tc_legcache_hits_total",
		"tc_legcache_misses_total",
		"tc_rpc_leg_sent_total",
		"tc_rpc_update_failed_total",
		"tc_epoch",
	} {
		if !catalog[want] {
			t.Errorf("catalog missing %s (have %v)", want, catalog)
		}
	}
	if catalog["tc_legcache_{hits,misses}_total"] {
		t.Error("unexpanded family shorthand leaked into the catalog")
	}
}
