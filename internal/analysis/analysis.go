// Package analysis is the repo's project-invariant analyzer suite:
// the machinery behind cmd/tcvet. Every hard-won correctness contract
// of the distributed transitive-closure design — strict layering
// behind pkg/tcq, injected clocks in the breaker/retry state
// machines, drained-and-closed HTTP response bodies, the typed
// peer-error taxonomy, the tc_-prefixed metric catalog — is encoded
// here as a mechanical check instead of a claim in CHANGES.md that
// only reviewer memory enforces.
//
// The driver is deliberately zero-dependency (stdlib go/ast,
// go/parser, go/types only; no golang.org/x/tools import), in the
// same spirit as internal/metrics: the analysis layer must never be
// the reason the build grows a dependency tree. Analyzers report
// file:line:col diagnostics; true-but-intentional findings are
// silenced in place with
//
//	//tcvet:ignore <analyzer> <reason>
//
// on (or immediately above) the offending line, or
//
//	//tcvet:ignore-file <analyzer> <reason>
//
// anywhere in a file to exempt the whole file. The reason string is
// mandatory, and a suppression that no longer matches a diagnostic is
// itself a finding — the suppression set can never rot.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: an invariant violation (or a suppression
// hygiene problem) at a concrete source position.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the check that produced it ("tcvet" for
	// suppression-directive hygiene findings emitted by the driver).
	Analyzer string
	// Message states what is violated and how to fix it.
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass is one analyzer's view of one package: the parsed (and, when
// the analyzer asked for it, type-checked) source plus a reporting
// sink. Analyzers never see test files — the invariants are
// production-code contracts, and tests legitimately reach across them
// for oracles.
type Pass struct {
	// Fset resolves token.Pos values for every file of the pass.
	Fset *token.FileSet
	// PkgPath is the package's import path (e.g.
	// "repro/internal/cluster"); scoped analyzers key their rules off
	// it.
	PkgPath string
	// Files are the package's non-test files, parsed with comments.
	Files []*ast.File
	// Pkg and Info carry type information; nil/empty unless the
	// analyzer declared NeedTypes.
	Pkg  *types.Package
	Info *types.Info

	analyzer *Analyzer
	sink     *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one project-invariant check.
type Analyzer struct {
	// Name is the identifier used in diagnostics and in
	// //tcvet:ignore directives.
	Name string
	// Doc is the one-line contract the analyzer enforces.
	Doc string
	// NeedTypes requests a type-checked Pass (slower: the loader
	// type-checks the package and its dependencies from source).
	NeedTypes bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Options configures the suite for one run.
type Options struct {
	// MetricCatalog is the set of metric names documented in the
	// README catalog; nil disables the metricname documentation
	// cross-check (fixture tests inject their own catalog, the driver
	// scrapes README.md).
	MetricCatalog map[string]bool
}

// Suite returns the full analyzer suite in its stable order.
func Suite(opts Options) []*Analyzer {
	return []*Analyzer{
		ImportBoundary(),
		InjectedClock(),
		DrainCloser(),
		TypedErr(),
		MetricName(opts.MetricCatalog),
	}
}

// runAnalyzer applies one analyzer to one loaded package and returns
// its raw (unsuppressed) findings.
func runAnalyzer(a *Analyzer, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	pass := &Pass{
		Fset:     pkg.Fset,
		PkgPath:  pkg.Path,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		analyzer: a,
		sink:     &diags,
	}
	a.Run(pass)
	return diags
}

// RunSuite runs every analyzer over every package, applies the
// suppression directives, appends directive-hygiene findings (missing
// reasons, unknown analyzers, unused suppressions), and returns the
// surviving diagnostics sorted by position.
func RunSuite(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		sups, hygiene := collectSuppressions(pkg, known)
		out = append(out, hygiene...)
		for _, a := range analyzers {
			if a.NeedTypes && pkg.Types == nil {
				continue // load reported the type-check failure already
			}
			for _, d := range runAnalyzer(a, pkg) {
				if !sups.suppress(d) {
					out = append(out, d)
				}
			}
		}
		out = append(out, sups.unused()...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
