package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader: walks a module tree, parses every non-test package, and
// type-checks on demand. Intra-module imports are resolved by loading
// the imported directory recursively; everything else (the stdlib)
// goes through the gc source importer, so the whole pipeline stays on
// the standard library — no export-data files, no x/tools.

// Package is one loaded module package.
type Package struct {
	// Path is the import path ("repro/internal/cluster").
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Fset is the loader-wide file set.
	Fset *token.FileSet
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info are populated by Check; nil until then (and nil
	// if type-checking failed — the load error records why).
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks the packages of one module.
type Loader struct {
	// Root is the absolute module root (the directory holding go.mod).
	Root string
	// Module is the module path from go.mod.
	Module string

	fset     *token.FileSet
	std      types.Importer
	pkgs     map[string]*Package // by import path; nil value = load failed
	loadErrs map[string]error
	checked  map[string]*types.Package
	checking map[string]bool
}

// NewLoader locates the module root at or above dir and prepares a
// loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		root = parent
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:     root,
		Module:   mod,
		fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     map[string]*Package{},
		loadErrs: map[string]error{},
		checked:  map[string]*types.Package{},
		checking: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mod := strings.TrimSpace(strings.Trim(strings.TrimSpace(rest), `"`))
			if mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadAll discovers and parses every package under the module root,
// skipping testdata, hidden and VCS directories. It returns the
// packages sorted by import path; parse failures abort (an unparsable
// tree cannot be vetted).
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// importPathFor maps an absolute module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// parseDir parses the non-test Go files of one directory into a
// Package, or returns nil if the directory holds none.
func (l *Loader) parseDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.parseDirAs(dir, path)
}

// LoadDirAs parses a directory's files under an assumed import path —
// how the golden-fixture tests present testdata packages to analyzers
// whose rules are scoped by package path (a fixture living in
// testdata/src/... analyzes as if it were repro/internal/cluster).
func (l *Loader) LoadDirAs(dir, asPath string) (*Package, error) {
	pkg, err := l.parseDirAs(dir, asPath)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return pkg, nil
}

// parseDirAs parses dir's files registering them under path.
func (l *Loader) parseDirAs(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, l.loadErrs[path]
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		// Honor build constraints (//go:build lines and _goos/_goarch
		// file suffixes) for the host platform, exactly like the real
		// build: per-platform variants of one symbol would otherwise
		// type-check as redeclarations.
		if ok, err := build.Default.MatchFile(dir, n); err != nil || !ok {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		l.pkgs[path] = nil
		return nil, nil
	}
	sort.Strings(names)
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset}
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			l.pkgs[path] = nil
			l.loadErrs[path] = err
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Check type-checks pkg (and, transitively, every package it
// imports), populating pkg.Types and pkg.Info. Errors are returned
// once per package and leave pkg.Types nil.
func (l *Loader) Check(pkg *Package) error {
	if pkg.Types != nil {
		return nil
	}
	tp, err := l.check(pkg.Path)
	if err != nil {
		return err
	}
	pkg.Types = tp
	return nil
}

// check resolves one import path to a type-checked package.
func (l *Loader) check(path string) (*types.Package, error) {
	if tp, ok := l.checked[path]; ok {
		return tp, l.loadErrs["check:"+path]
	}
	if l.checking[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	pkg := l.pkgs[path]
	if pkg == nil {
		// Not parsed yet: resolve the directory from the import path.
		rel := strings.TrimPrefix(path, l.Module)
		dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
		var err error
		pkg, err = l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files for %s", path)
		}
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if imp == l.Module || strings.HasPrefix(imp, l.Module+"/") {
				return l.check(imp)
			}
			return l.std.Import(imp)
		}),
		Error: func(err error) { typeErrs = append(typeErrs, err) },
	}
	tp, _ := conf.Check(path, l.fset, pkg.Files, info)
	if len(typeErrs) > 0 {
		err := fmt.Errorf("analysis: type-checking %s: %v", path, typeErrs[0])
		l.checked[path] = nil
		l.loadErrs["check:"+path] = err
		return nil, err
	}
	pkg.Types = tp
	pkg.Info = info
	l.checked[path] = tp
	return tp, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
