package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The golden-fixture harness. Each fixture package under
// testdata/src/<name> is parsed under an ASSUMED import path — that is
// how path-scoped analyzers (injectedclock, typederr, importboundary)
// are made to see the package they police without the fixture living
// inside it. Expectations are written in the fixture source as
//
//	some.Violation() // want "substring" ["substring" ...]
//
// trailing comments; the harness reconciles analyzer output against
// them in both directions, so a fixture that stops triggering and an
// analyzer that over-reports both fail.

var wantQuoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// sharedLoader caches one loader across the typed fixtures so the
// stdlib is source-type-checked once per test binary, not once per
// fixture. Typed fixtures must therefore use unique assumed paths;
// untyped fixtures (which reuse real paths like repro/internal/cluster
// to hit analyzer scoping) each get a throwaway loader instead.
var (
	sharedLoaderOnce sync.Once
	sharedLoaderVal  *Loader
	sharedLoaderErr  error
)

func loadFixture(t *testing.T, name, asPath string, typed bool) *Package {
	t.Helper()
	var l *Loader
	var err error
	if typed {
		sharedLoaderOnce.Do(func() {
			sharedLoaderVal, sharedLoaderErr = NewLoader(".")
		})
		l, err = sharedLoaderVal, sharedLoaderErr
	} else {
		l, err = NewLoader(".")
	}
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDirAs(filepath.Join("testdata", "src", name), asPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if typed {
		if err := l.Check(pkg); err != nil {
			t.Fatalf("type-check fixture %s: %v", name, err)
		}
	}
	return pkg
}

// fixtureWants extracts the expectations, keyed "file.go:line".
func fixtureWants(t *testing.T, pkg *Package) map[string][]string {
	t.Helper()
	wants := map[string][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				quoted := wantQuoted.FindAllString(rest, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s: want comment carries no quoted expectation", key)
				}
				for _, q := range quoted {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: malformed want expectation %s: %v", key, q, err)
					}
					wants[key] = append(wants[key], s)
				}
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over a fixture package and reconciles
// its raw diagnostics against the want comments.
func checkFixture(t *testing.T, a *Analyzer, pkg *Package) {
	t.Helper()
	wants := fixtureWants(t, pkg)
	for _, d := range runAnalyzer(a, pkg) {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		ws := wants[key]
		matched := -1
		for i, w := range ws {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", key, d.Analyzer, d.Message)
			continue
		}
		wants[key] = append(ws[:matched], ws[matched+1:]...)
		if len(wants[key]) == 0 {
			delete(wants, key)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			t.Errorf("missing diagnostic at %s: want message containing %q", key, w)
		}
	}
}
