package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// typederr protects the typed error taxonomy the cluster lives on.
// Every error that can cross the wire boundary — peer envelopes,
// /v1 error codes, the breaker/fallback decisions keyed off
// errors.Is(err, ErrPeerDown) — must wrap a sentinel, or the
// taxonomy silently degrades to string matching: the transport's
// codeToErr map cannot translate it, the breaker misclassifies it,
// and the 502/504/409 status mapping falls through to 500. So inside
// the wire-boundary packages (internal/cluster, internal/server):
//
//   - errors.New is legal only at package level, where it MINTS a
//     sentinel; inside a function it creates an unmatchable one-off.
//   - fmt.Errorf must carry %w, wrapping either a sentinel or the
//     underlying cause, so errors.Is/As keep working stack-wide.
//
// Validation-only helpers that provably never reach the wire carry
// suppressions with reasons (or, for whole client-side files like
// the load driver, a //tcvet:ignore-file).

// typederrScopedPkgs are the wire-boundary packages.
var typederrScopedPkgs = map[string]bool{
	"repro/internal/cluster": true,
	"repro/internal/server":  true,
}

// TypedErr returns the typed-error-taxonomy analyzer.
func TypedErr() *Analyzer {
	return &Analyzer{
		Name: "typederr",
		Doc:  "wire-boundary errors must wrap a sentinel: no errors.New in function bodies, no fmt.Errorf without %w, in internal/cluster and internal/server",
		Run:  runTypedErr,
	}
}

func runTypedErr(pass *Pass) {
	if !typederrScopedPkgs[pass.PkgPath] {
		return
	}
	for _, f := range pass.Files {
		imports := fileImports(f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				// Package-level declarations may mint sentinels.
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkgID, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				switch {
				case imports[pkgID.Name] == "errors" && sel.Sel.Name == "New":
					pass.Reportf(call.Pos(),
						"errors.New inside a function creates an unmatchable one-off error: mint a package-level sentinel and wrap it with fmt.Errorf(\"...: %%w\", Err...) so errors.Is works across the wire")
				case imports[pkgID.Name] == "fmt" && sel.Sel.Name == "Errorf":
					if format, ok := constStringArg(call); ok && !strings.Contains(format, "%w") {
						pass.Reportf(call.Pos(),
							"fmt.Errorf without %%w drops the typed taxonomy: wrap a sentinel or the cause so errors.Is keeps working once this error crosses the wire")
					}
				}
				return true
			})
		}
	}
}

// constStringArg extracts the call's first argument when it is a
// compile-time string (literal or concatenation of literals).
func constStringArg(call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	return constString(call.Args[0])
}

// constString folds an expression to a string constant syntactically.
func constString(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return "", false
		}
		// The raw literal text (quotes included) is enough: no escape
		// sequence can spell "%w", so substring matching stays sound.
		return e.Value, true
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return "", false
		}
		l, lok := constString(e.X)
		r, rok := constString(e.Y)
		if lok && rok {
			return l + r, true
		}
	case *ast.ParenExpr:
		return constString(e.X)
	}
	return "", false
}
