package analysis

import (
	"os"
	"regexp"
	"strings"
)

// The metric catalog cross-check reads the README rather than a
// separate manifest: the README table IS the documentation the check
// exists to keep honest, so scraping anything else would reintroduce
// the drift the analyzer prevents.

// metricTokenRE matches a documented metric name, including the
// README table's brace-family shorthand:
// tc_legcache_{hits,misses}_total.
var metricTokenRE = regexp.MustCompile(`\btc_[a-z0-9_]*(?:\{[a-z0-9_,]+\}[a-z0-9_]*)*`)

// MetricCatalogFromReadme extracts every tc_-prefixed metric name
// mentioned in the README, forming the documented-metric set the
// metricname analyzer checks registrations against.
func MetricCatalogFromReadme(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	catalog := map[string]bool{}
	for _, tok := range metricTokenRE.FindAllString(string(data), -1) {
		for _, name := range expandMetricToken(tok) {
			catalog[name] = true
		}
	}
	return catalog, nil
}

// expandMetricToken expands each {a,b,...} alternation group in a
// documented name; a plain token expands to itself.
func expandMetricToken(tok string) []string {
	i := strings.Index(tok, "{")
	if i < 0 {
		return []string{tok}
	}
	j := strings.Index(tok, "}")
	var out []string
	for _, alt := range strings.Split(tok[i+1:j], ",") {
		out = append(out, expandMetricToken(tok[:i]+alt+tok[j+1:])...)
	}
	return out
}
