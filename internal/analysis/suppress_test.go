package analysis

import (
	"strings"
	"testing"
)

// The suppression contract, end to end through RunSuite: well-formed
// directives silence exactly their diagnostic; a directive without a
// reason or with an unknown analyzer silences NOTHING and is itself a
// finding; a directive with nothing left to silence is a finding. The
// last two are what make every suppression load-bearing — deleting or
// rotting one fails the gate.

func TestSuppressionsSilenceFindings(t *testing.T) {
	pkg := loadFixture(t, "suppress_ok", "repro/internal/cluster", false)
	diags := RunSuite(Suite(Options{}), []*Package{pkg})
	for _, d := range diags {
		t.Errorf("suppressed fixture produced a diagnostic: %s", d)
	}
}

func TestSuppressionHygiene(t *testing.T) {
	pkg := loadFixture(t, "suppress_bad", "repro/internal/cluster", false)
	diags := RunSuite(Suite(Options{}), []*Package{pkg})

	wants := []struct{ analyzer, substr string }{
		// The reason-less directive is rejected...
		{"tcvet", "gives no reason"},
		// ...and, because it silences nothing, the violation under it
		// surfaces anyway.
		{"injectedclock", "bare time.Now"},
		// Same pair for the unknown-analyzer typo.
		{"tcvet", "unknown analyzer clockcheck"},
		{"injectedclock", "bare time.Now"},
		// The well-formed directive with nothing to silence.
		{"tcvet", "unused suppression for draincloser"},
	}
	remaining := make([]Diagnostic, len(diags))
	copy(remaining, diags)
	for _, w := range wants {
		found := -1
		for i, d := range remaining {
			if d.Analyzer == w.analyzer && strings.Contains(d.Message, w.substr) {
				found = i
				break
			}
		}
		if found < 0 {
			t.Errorf("missing [%s] diagnostic containing %q", w.analyzer, w.substr)
			continue
		}
		remaining = append(remaining[:found], remaining[found+1:]...)
	}
	for _, d := range remaining {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
