package analysis

import (
	"path/filepath"
	"testing"
)

// TestRepoIsTCVetClean runs the full suite over the real module —
// the same gate cmd/tcvet gives CI, here so a plain `go test ./...`
// catches an invariant violation (or a rotted suppression) before a
// push. Skipped under -short: type-checking the tree from source
// takes tens of seconds.
func TestRepoIsTCVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree source type-check is slow; run without -short or use cmd/tcvet")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadAll found no packages")
	}
	catalog, err := MetricCatalogFromReadme(filepath.Join(l.Root, "README.md"))
	if err != nil {
		t.Fatalf("reading metric catalog: %v", err)
	}
	for _, pkg := range pkgs {
		if err := l.Check(pkg); err != nil {
			t.Errorf("type-check %s: %v", pkg.Path, err)
		}
	}
	for _, d := range RunSuite(Suite(Options{MetricCatalog: catalog}), pkgs) {
		t.Errorf("%s", d)
	}
}
