package analysis

import (
	"go/ast"
	"go/types"
)

// draincloser makes the PR 8 keep-alive bug impossible to
// reintroduce. The bug: json.Decoder stops reading at the end of the
// first JSON value, so Decode-then-Close leaves trailing bytes
// (usually the final newline) unread — net/http then refuses to
// reuse the connection, and every subsequent RPC pays a fresh TCP
// handshake. The fix, and now the contract, is that every
// *http.Response body is BOTH closed and fully drained:
//
//	defer resp.Body.Close()
//	err := json.NewDecoder(resp.Body).Decode(&out)
//	io.Copy(io.Discard, resp.Body) // drain what the decoder left
//
// The analysis is function-granular and type-driven: it finds every
// variable of type *net/http.Response, requires a Body.Close in the
// same function (unless the response escapes — is returned or handed
// to another function whole, transferring ownership), and flags any
// json/xml NewDecoder over a response body that is not accompanied by
// a full-read of the same body (io.Copy/io.ReadAll or any other
// consuming call).
type respUse struct {
	obj        types.Object
	born       ast.Node // the assignment that produced it; nil for params
	closed     bool
	escaped    bool
	drained    bool       // body passed to a non-decoder consumer
	decoderPos []ast.Node // NewDecoder(resp.Body) sites
}

// DrainCloser returns the response-body analyzer.
func DrainCloser() *Analyzer {
	return &Analyzer{
		Name:      "draincloser",
		Doc:       "every *http.Response body must be closed and fully drained; json.NewDecoder alone leaves trailing bytes that kill keep-alive reuse",
		NeedTypes: true,
		Run:       runDrainCloser,
	}
}

func runDrainCloser(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncResponses(pass, fn)
		}
	}
}

// isHTTPResponsePtr reports whether t is *net/http.Response.
func isHTTPResponsePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Response" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// objOf resolves an identifier to its object, definition or use.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// checkFuncResponses applies the drain-and-close contract to one
// function body.
func checkFuncResponses(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Info
	uses := map[types.Object]*respUse{}

	// Response-typed parameters: the caller owns Close, but the
	// decoder-drain rule still applies to whatever this function reads.
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil && isHTTPResponsePtr(obj.Type()) {
				uses[obj] = &respUse{obj: obj, closed: true}
			}
		}
	}

	// Response variables born from assignments in this function.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := objOf(info, id)
			if obj == nil || !isHTTPResponsePtr(obj.Type()) {
				continue
			}
			if _, seen := uses[obj]; !seen {
				uses[obj] = &respUse{obj: obj, born: assign}
			}
		}
		return true
	})
	if len(uses) == 0 {
		return
	}

	// Classify every reference to each response object.
	assignLHS := map[*ast.Ident]bool{}
	selectorX := map[*ast.Ident]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					assignLHS[id] = true
				}
			}
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok {
				selectorX[id] = true
			}
		case *ast.CallExpr:
			classifyRespCall(info, n, uses)
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || assignLHS[id] || selectorX[id] {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if u, tracked := uses[obj]; tracked {
			// A bare (non-selector) use: returned, passed whole to a
			// call, aliased, compared. Ownership may have moved —
			// conservatively trust the new owner with Close.
			u.escaped = true
		}
		return true
	})

	for _, u := range uses {
		if !u.closed && !u.escaped {
			pass.Reportf(u.born.Pos(),
				"*http.Response body is never closed in this function: add `defer %s.Body.Close()` (and drain before it) or the connection leaks",
				u.obj.Name())
		}
		if len(u.decoderPos) > 0 && !u.drained {
			pass.Reportf(u.decoderPos[0].Pos(),
				"json.NewDecoder(%s.Body) stops at the end of the first value; drain the remainder with io.Copy(io.Discard, %s.Body) before Close, or keep-alive reuse dies (the PR 8 bug)",
				u.obj.Name(), u.obj.Name())
		}
	}
}

// classifyRespCall updates the tracked responses for one call:
// Body.Close marks closed, NewDecoder(resp.Body) records a decoder
// read, any other call consuming resp.Body counts as a drain.
func classifyRespCall(info *types.Info, call *ast.CallExpr, uses map[types.Object]*respUse) {
	// resp.Body.Close()
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
		if u := bodyOwner(info, sel.X, uses); u != nil {
			u.closed = true
			return
		}
	}
	isDecoder := false
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "NewDecoder" {
		isDecoder = true
	}
	for _, arg := range call.Args {
		u := bodyOwner(info, arg, uses)
		if u == nil {
			continue
		}
		if isDecoder {
			u.decoderPos = append(u.decoderPos, call)
		} else {
			u.drained = true
		}
	}
}

// bodyOwner resolves an expression of the form resp.Body back to its
// tracked response, or nil.
func bodyOwner(info *types.Info, e ast.Expr, uses map[types.Object]*respUse) *respUse {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Body" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		return nil
	}
	return uses[obj]
}
