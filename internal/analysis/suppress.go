package analysis

import (
	"go/token"
	"strings"
)

// Suppression directives. A finding is silenced by a comment naming
// the analyzer and giving a reason:
//
//	resp, _ := c.Do(req) //tcvet:ignore draincloser ownership moves to the caller
//
// or, as a standalone comment, on the line directly above the
// finding. A whole file is exempted with //tcvet:ignore-file. The
// reason is not decoration: a directive without one is a finding, and
// so is a directive that no longer suppresses anything — deleting a
// load-bearing suppression or leaving a stale one both fail the gate.

const (
	directivePrefix     = "tcvet:ignore"
	fileDirectivePrefix = "tcvet:ignore-file"
)

// directive is one parsed //tcvet:ignore[-file] comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	file     bool // tcvet:ignore-file
	used     bool
}

// suppressions indexes one package's directives.
type suppressions struct {
	// line directives by (filename, line): a directive suppresses
	// findings on its own line and on the line below it.
	byLine map[string]map[int]*directive
	// file directives by (filename, analyzer).
	byFile map[string]map[string]*directive
	all    []*directive
}

// collectSuppressions scans a package's comments for directives,
// returning the index plus hygiene findings for malformed ones
// (missing reason, unknown analyzer). Malformed directives are not
// indexed — they never silence anything.
func collectSuppressions(pkg *Package, known map[string]bool) (*suppressions, []Diagnostic) {
	s := &suppressions{
		byLine: map[string]map[int]*directive{},
		byFile: map[string]map[string]*directive{},
	}
	var hygiene []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				isFile := strings.HasPrefix(text, fileDirectivePrefix)
				rest := strings.TrimPrefix(text, directivePrefix)
				if isFile {
					rest = strings.TrimPrefix(text, fileDirectivePrefix)
				}
				fields := strings.Fields(rest)
				bad := func(msg string) {
					hygiene = append(hygiene, Diagnostic{Pos: pos, Analyzer: "tcvet", Message: msg})
				}
				if len(fields) == 0 {
					bad("suppression names no analyzer (want //" + directivePrefix + " <analyzer> <reason>)")
					continue
				}
				if !known[fields[0]] {
					bad("suppression names unknown analyzer " + fields[0])
					continue
				}
				if len(fields) < 2 {
					bad("suppression for " + fields[0] + " gives no reason; every suppression must say why the invariant is waived")
					continue
				}
				d := &directive{
					pos:      pos,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					file:     isFile,
				}
				s.all = append(s.all, d)
				if isFile {
					if s.byFile[pos.Filename] == nil {
						s.byFile[pos.Filename] = map[string]*directive{}
					}
					s.byFile[pos.Filename][d.analyzer] = d
					continue
				}
				if s.byLine[pos.Filename] == nil {
					s.byLine[pos.Filename] = map[int]*directive{}
				}
				s.byLine[pos.Filename][pos.Line] = d
			}
		}
	}
	return s, hygiene
}

// suppress reports whether d is silenced by a directive, marking the
// directive used.
func (s *suppressions) suppress(d Diagnostic) bool {
	if fd := s.byFile[d.Pos.Filename][d.Analyzer]; fd != nil {
		fd.used = true
		return true
	}
	lines := s.byLine[d.Pos.Filename]
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if ld := lines[line]; ld != nil && ld.analyzer == d.Analyzer {
			ld.used = true
			return true
		}
	}
	return false
}

// unused returns a finding for every directive that silenced nothing.
func (s *suppressions) unused() []Diagnostic {
	var out []Diagnostic
	for _, d := range s.all {
		if !d.used {
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Analyzer: "tcvet",
				Message:  "unused suppression for " + d.analyzer + " (no diagnostic to silence); delete it",
			})
		}
	}
	return out
}
