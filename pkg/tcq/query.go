package tcq

import (
	"context"
	"sort"
	"time"

	"repro/internal/dsa"
	"repro/internal/graph"
)

// Answer is the result for one (source, target) pair.
type Answer struct {
	// Source and Target echo the pair.
	Source, Target int
	// Reachable reports whether any path exists along the considered
	// fragment chains.
	Reachable bool
	// Cost is the cheapest path cost for the cost modes (+Inf when
	// unreachable). Connectivity answers carry Cost 0 — reachability is
	// the whole answer there, and the connectivity engines do not
	// compute comparable costs.
	Cost float64
	// BestChain is the fragment chain realising Cost (nil when
	// unreachable or in connectivity mode).
	BestChain []int
	// SameFragment reports the single-site fast path.
	SameFragment bool
	// Truncated reports that chain enumeration hit the MaxChains bound,
	// making the answer an upper bound rather than exact.
	Truncated bool
	// ChainsConsidered is the number of fragment chains evaluated.
	ChainsConsidered int
	// Sites is the number of distinct sites that computed legs.
	Sites int
	// PerSite details each involved site's work.
	PerSite map[int]SiteWork
	// AssemblyJoins and MaxOperand report the final combination phase —
	// the paper's "sequence of binary joins between very small
	// relations".
	AssemblyJoins int
	// MaxOperand — see AssemblyJoins.
	MaxOperand int
	// TuplesShipped is the total cardinality of the shipped leg
	// results.
	TuplesShipped int
	// Elapsed is the wall-clock time of this pair's evaluation.
	Elapsed time.Duration
}

// answerFrom converts an internal result into a facade answer.
func answerFrom(source, target int, mode Mode, res *dsa.Result) Answer {
	a := Answer{
		Source:           source,
		Target:           target,
		Reachable:        res.Reachable,
		Cost:             res.Cost,
		BestChain:        res.BestChain,
		SameFragment:     res.SameFragment,
		Truncated:        res.Truncated,
		ChainsConsidered: res.ChainsConsidered,
		Sites:            len(res.PerSite),
		PerSite:          res.PerSite,
		AssemblyJoins:    res.Assembly.Joins,
		MaxOperand:       res.Assembly.MaxOperand,
		TuplesShipped:    res.TuplesShipped,
		Elapsed:          res.Elapsed,
	}
	if mode == ModeConnectivity {
		// The connectivity engines carry presence markers, not costs;
		// zero them so answers are engine-independent.
		a.Cost = 0
		a.BestChain = nil
	}
	return a
}

// Result is a fully materialised query response: the planner's
// decision plus one Answer per (source, target) pair, in canonical
// order (sources ascending, then targets ascending).
type Result struct {
	// Explain is the planner's decision for this request.
	Explain Explain
	// Answers holds one entry per evaluated pair.
	Answers []Answer
	// LimitHit reports that Request.Limit stopped the evaluation before
	// every pair was answered.
	LimitHit bool
	// CacheHits and CacheMisses aggregate the runner's leg-cache
	// behaviour across all pairs (zero for direct store execution).
	CacheHits, CacheMisses int
	// Elapsed is the wall-clock time of the whole request.
	Elapsed time.Duration
}

// Query answers a request: validate once, plan once, pin the current
// snapshot, evaluate every (source, target) pair on it, honouring ctx
// throughout. Unreachable pairs are answers, not errors; hard failures
// (validation, planning, cancellation, execution) return a typed error
// and no result.
func (c *Client) Query(ctx context.Context, req Request) (*Result, error) {
	return queryOn(ctx, c.ds.Snapshot(), c.runner, req)
}

// queryOn materialises a full Result from a stream over one pinned
// snapshot.
func queryOn(ctx context.Context, snap *Snapshot, runner Runner, req Request) (*Result, error) {
	start := time.Now()
	rs, err := streamOn(ctx, snap, runner, req)
	if err != nil {
		return nil, err
	}
	defer rs.Close()
	res := &Result{Explain: rs.Explain()}
	for rs.Next() {
		res.Answers = append(res.Answers, rs.Answer())
	}
	if err := rs.Err(); err != nil {
		return nil, err
	}
	res.LimitHit = rs.limitHit
	res.CacheHits, res.CacheMisses = rs.cacheHits, rs.cacheMisses
	if pr, ok := runner.(PlacementReporter); ok {
		res.Explain.Placement = pr.Placement(involvedSites(res.Answers))
		for i := range res.Explain.Placement {
			if rs.fallback[res.Explain.Placement[i].Site] {
				res.Explain.Placement[i].Fallback = true
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// involvedSites returns the sorted union of sites the answers touched.
func involvedSites(answers []Answer) []int {
	seen := map[int]bool{}
	for _, a := range answers {
		for site := range a.PerSite {
			seen[site] = true
		}
	}
	sites := make([]int, 0, len(seen))
	for site := range seen {
		sites = append(sites, site)
	}
	sort.Ints(sites)
	return sites
}

// BatchResult pairs one batch entry's result with its error — batch
// evaluation is partial-failure tolerant, so one invalid request does
// not poison its neighbours.
type BatchResult struct {
	// Result is the entry's response (nil when Err is set).
	Result *Result
	// Err is the entry's typed error (nil when Result is set).
	Err error
}

// QueryBatch answers several requests in order. Per-request failures
// land in the corresponding BatchResult.Err; the call itself only
// fails on cancellation, returning the completed prefix alongside an
// error wrapping ErrCanceled.
func (c *Client) QueryBatch(ctx context.Context, reqs []Request) ([]BatchResult, error) {
	out := make([]BatchResult, 0, len(reqs))
	for _, req := range reqs {
		if err := ctx.Err(); err != nil {
			return out, canceledErr(ctx)
		}
		res, err := c.Query(ctx, req)
		out = append(out, BatchResult{Result: res, Err: err})
	}
	return out, nil
}

// QueryStream starts a request and returns an iterator over its
// answers — the streaming interface for large source × target
// products, evaluating pairs lazily so a consumer that stops early
// (or a Limit) never pays for the rest. Validation and planning happen
// eagerly, so a returned Results is guaranteed to have a resolved
// Explain.
//
// The iteration pattern is the standard scanner shape:
//
//	rs, err := client.QueryStream(ctx, req)
//	for rs.Next() {
//	        use(rs.Answer())
//	}
//	if err := rs.Err(); err != nil { ... }
func (c *Client) QueryStream(ctx context.Context, req Request) (*Results, error) {
	return streamOn(ctx, c.ds.Snapshot(), c.runner, req)
}

// streamOn validates and plans a request against one pinned snapshot
// and returns the lazy pair iterator bound to it — every pair of the
// stream evaluates on the same generation, regardless of batches
// applied while the consumer iterates.
func streamOn(ctx context.Context, snap *Snapshot, runner Runner, req Request) (*Results, error) {
	canon, err := req.canonical()
	if err != nil {
		return nil, err
	}
	ex, err := Plan(canon, snap.stats)
	if err != nil {
		return nil, err
	}
	eng, err := ex.Engine.dsa()
	if err != nil {
		return nil, err
	}
	return &Results{snap: snap, runner: runner, ctx: ctx, req: canon, explain: ex, engine: eng}, nil
}

// Results is a lazy answer stream (see Client.QueryStream). It is not
// safe for concurrent use.
type Results struct {
	snap    *Snapshot
	runner  Runner
	ctx     context.Context
	req     Request
	explain Explain
	engine  dsa.Engine

	i, j    int // next pair: Sources[i] × Targets[j]
	emitted int
	cur     Answer
	err     error
	closed  bool

	limitHit    bool
	cacheHits   int
	cacheMisses int
	fallback    map[int]bool // sites answered by degraded local fallback
}

// Explain returns the planner's decision for the stream's request.
func (rs *Results) Explain() Explain { return rs.explain }

// Next evaluates the next (source, target) pair. It returns false when
// the pairs are exhausted, the Limit is reached, the stream is closed,
// or an error occurred — check Err afterwards.
func (rs *Results) Next() bool {
	if rs.err != nil || rs.closed {
		return false
	}
	if rs.i >= len(rs.req.Sources) {
		return false
	}
	if rs.req.Limit > 0 && rs.emitted >= rs.req.Limit {
		rs.limitHit = true
		return false
	}
	if err := rs.ctx.Err(); err != nil {
		rs.err = canceledErr(rs.ctx)
		return false
	}
	source := rs.req.Sources[rs.i]
	target := rs.req.Targets[rs.j]
	if rs.j++; rs.j >= len(rs.req.Targets) {
		rs.j = 0
		rs.i++
	}
	res, runStats, err := rs.runner.RunPair(rs.ctx, rs.snap, graph.NodeID(source), graph.NodeID(target), rs.engine, rs.explain.Mode)
	if err != nil {
		rs.err = err
		return false
	}
	rs.cacheHits += runStats.CacheHits
	rs.cacheMisses += runStats.CacheMisses
	for _, site := range runStats.FallbackSites {
		if rs.fallback == nil {
			rs.fallback = map[int]bool{}
		}
		rs.fallback[site] = true
	}
	rs.cur = answerFrom(source, target, rs.explain.Mode, res)
	rs.emitted++
	return true
}

// Answer returns the pair answered by the last successful Next.
func (rs *Results) Answer() Answer { return rs.cur }

// Err returns the first error the stream hit, nil on clean exhaustion.
func (rs *Results) Err() error { return rs.err }

// Close stops the stream; subsequent Next calls return false. Closing
// is idempotent and never fails — it exists so streaming call sites
// can defer resource discipline.
func (rs *Results) Close() error {
	rs.closed = true
	return nil
}
