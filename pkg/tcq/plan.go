package tcq

import (
	"fmt"

	"repro/internal/dsa"
)

// Planner thresholds. A query crossing either floor is routed to the
// parallel kernels (bitset for connectivity, dense for costs); below
// both, the per-entry Dijkstra engine wins on startup cost. The values
// come from the repository's own benchmarks: on 64x64 grid fragments
// (~512 augmented nodes) the kernels beat Dijkstra by an order of
// magnitude, while on the paper's country-sized examples (tens of
// nodes) they lose to their setup work.
const (
	// KernelNodeFloor is the augmented-fragment node count at which the
	// planner switches from Dijkstra to the kernel engines.
	KernelNodeFloor = 192
	// KernelEntryFloor is the entry-set size at which the planner
	// switches to the kernel engines even on small fragments: a request
	// with n sources spans at least n per-pair evaluations, and the
	// kernels amortise their per-site setup (CSR snapshot, dense
	// renumbering/condensation — built once per site and reused) across
	// that volume, while Dijkstra pays its search cost per pair with
	// nothing to amortise.
	KernelEntryFloor = 8
)

// StoreStats is the per-deployment summary the planner decides on. It
// is collected once per store epoch (CollectStats) and is deliberately
// cheap to snapshot — no per-query graph scans.
type StoreStats struct {
	// Problem is the path problem the store precomputed.
	Problem Problem
	// Sites is the number of deployed fragments.
	Sites int
	// TotalNodes is the node count of the base graph.
	TotalNodes int
	// MaxSiteNodes and MaxSiteEdges bound the largest augmented
	// fragment — the size of the worst per-site subquery, which is what
	// engine choice cares about.
	MaxSiteNodes int
	// MaxSiteEdges — see MaxSiteNodes.
	MaxSiteEdges int
	// LooselyConnected reports an acyclic fragmentation graph
	// (single-chain plans, exact answers).
	LooselyConnected bool
	// Epoch is the store update generation the stats were collected at.
	Epoch uint64
}

// CollectStats snapshots the planner inputs from a deployed store.
func CollectStats(st *dsa.Store) StoreStats {
	s := StoreStats{
		Problem:          st.Problem(),
		Sites:            len(st.Sites()),
		TotalNodes:       st.Fragmentation().Base().NumNodes(),
		LooselyConnected: st.LooselyConnected(),
		Epoch:            st.Epoch(),
	}
	for _, site := range st.Sites() {
		if n := site.Augmented().NumNodes(); n > s.MaxSiteNodes {
			s.MaxSiteNodes = n
		}
		if e := site.Augmented().NumEdges(); e > s.MaxSiteEdges {
			s.MaxSiteEdges = e
		}
	}
	return s
}

// Explain is the planner's decision for one request: the concrete
// engine that will run every leg, and why. It is returned on every
// Result so callers can audit the system's choice, and its Canonical
// rendering is what the serving layer keys its leg cache on.
type Explain struct {
	// Mode echoes the request mode.
	Mode Mode
	// Engine is the resolved concrete engine (never EngineAuto).
	Engine Engine
	// Forced reports that the request overrode the planner.
	Forced bool
	// Reason says why the engine was chosen, in one sentence.
	Reason string
	// EntrySize is the canonical (deduplicated) source-set size the
	// decision was based on.
	EntrySize int
	// Pairs is the number of (source, target) pairs the request spans
	// before any Limit.
	Pairs int
	// Placement maps each site the answers touched to the cluster node
	// that owns (and executed) its legs. It is populated only when the
	// runner executes across a multi-node cluster (the serving layer's
	// executor implements PlacementReporter); single-process runners
	// leave it nil. Sites ascending.
	Placement []SitePlacement
}

// SitePlacement records which cluster node owns one site's legs.
type SitePlacement struct {
	// Site is the fragment/site ID.
	Site int `json:"site"`
	// Node is the owning node's ID.
	Node string `json:"node"`
	// Fallback reports degraded-mode execution: the owning node was
	// unreachable (down, timed out, or circuit-breaker open), so the
	// coordinator executed this site's legs locally against its own
	// pinned snapshot. The answer is exact — every node holds the full
	// dataset — but the cluster is running degraded; /readyz reports it.
	Fallback bool `json:"fallback,omitempty"`
}

// PlacementReporter is implemented by runners that execute legs across
// a multi-node cluster: given the sites a result touched, it reports
// which node owns each. The facade uses it to fill Explain.Placement
// on materialised results.
type PlacementReporter interface {
	Placement(sites []int) []SitePlacement
}

// Canonical renders the plan as a stable "mode/engine" string — the
// cache-key prefix of the serving layer's leg cache and the wire value
// of the /v1 API's explain block.
func (e Explain) Canonical() string {
	return e.Mode.String() + "/" + e.Engine.String()
}

// Plan resolves the engine for a request against a deployment's stats:
// the cost-based auto-planner of the facade. Forced engines are
// validated for mode compatibility and passed through; EngineAuto is
// resolved from the query mode, the entry-set size and the largest
// augmented fragment:
//
//	connectivity  → bitset when the deployment crosses KernelNodeFloor
//	                or the entry set crosses KernelEntryFloor, else
//	                dijkstra
//	cost          → dense under the same floors, else dijkstra
//	pipelined     → dense when the deployment crosses KernelNodeFloor,
//	                else dijkstra (entry size is irrelevant — pipelined
//	                legs are one vector-seeded pass regardless)
//
// The semi-naive engine is never auto-chosen: it is the paper-faithful
// reference implementation, available only as an explicit override.
// Errors wrap ErrProblemMismatch (cost modes on a reachability store),
// ErrEngineMismatch (incompatible forced engine) or the validation
// sentinels.
func Plan(req Request, stats StoreStats) (Explain, error) {
	canon, err := req.canonical()
	if err != nil {
		return Explain{}, err
	}
	ex := Explain{
		Mode:      canon.Mode,
		EntrySize: len(canon.Sources),
		Pairs:     len(canon.Sources) * len(canon.Targets),
	}
	costQuery := canon.Mode == ModeCost || canon.Mode == ModePipelined
	if costQuery && stats.Problem != ProblemShortestPath {
		return ex, fmt.Errorf("tcq: %w: store precomputed for reachability cannot answer %s queries",
			ErrProblemMismatch, canon.Mode)
	}
	if canon.Engine != EngineAuto {
		ex.Engine = canon.Engine
		ex.Forced = true
		ex.Reason = "engine forced by request"
		if canon.Mode == ModePipelined && canon.Engine != EngineDijkstra && canon.Engine != EngineDense {
			return ex, fmt.Errorf("tcq: %w: pipelined evaluation needs a vector-seeded engine (dijkstra or dense), not %s",
				ErrEngineMismatch, canon.Engine)
		}
		if canon.Mode == ModeCost && canon.Engine == EngineBitset {
			return ex, fmt.Errorf("tcq: %w: engine bitset computes connectivity only", ErrEngineMismatch)
		}
		return ex, nil
	}

	largeSite := stats.MaxSiteNodes >= KernelNodeFloor
	largeEntry := ex.EntrySize >= KernelEntryFloor
	switch canon.Mode {
	case ModeConnectivity:
		if largeSite || largeEntry {
			ex.Engine = EngineBitset
			ex.Reason = fmt.Sprintf("connectivity over large work (max site nodes %d, entry set %d spanning %d pairs): bitset kernel",
				stats.MaxSiteNodes, ex.EntrySize, ex.Pairs)
		} else {
			ex.Engine = EngineDijkstra
			ex.Reason = fmt.Sprintf("connectivity over small work (max site nodes %d < %d, entry set %d < %d): per-entry dijkstra",
				stats.MaxSiteNodes, KernelNodeFloor, ex.EntrySize, KernelEntryFloor)
		}
	case ModeCost:
		if largeSite || largeEntry {
			ex.Engine = EngineDense
			ex.Reason = fmt.Sprintf("cost query over large work (max site nodes %d, entry set %d spanning %d pairs): dense CSR kernel",
				stats.MaxSiteNodes, ex.EntrySize, ex.Pairs)
		} else {
			ex.Engine = EngineDijkstra
			ex.Reason = fmt.Sprintf("cost query over small work (max site nodes %d < %d, entry set %d < %d): per-entry dijkstra",
				stats.MaxSiteNodes, KernelNodeFloor, ex.EntrySize, KernelEntryFloor)
		}
	case ModePipelined:
		if largeSite {
			ex.Engine = EngineDense
			ex.Reason = fmt.Sprintf("pipelined chain over large fragments (max site nodes %d ≥ %d): dense vector-seeded kernel",
				stats.MaxSiteNodes, KernelNodeFloor)
		} else {
			ex.Engine = EngineDijkstra
			ex.Reason = fmt.Sprintf("pipelined chain over small fragments (max site nodes %d < %d): multi-source dijkstra",
				stats.MaxSiteNodes, KernelNodeFloor)
		}
	}
	return ex, nil
}
