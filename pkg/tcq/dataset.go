package tcq

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/store"
)

// Dataset is the mutable handle on a deployed graph: the single writer
// gate of the facade. It owns the current immutable store generation
// behind an atomic pointer; Apply builds the next generation copy-on-
// write (only touched fragments are re-preprocessed) and swaps the
// pointer, so readers NEVER block on writers — a query pins the
// Snapshot current when it starts and runs on it to completion while
// any number of batches land.
//
//	ds, _ := tcq.NewDataset(fr, tcq.BuildOptions{})
//	snap := ds.Snapshot()                   // pinned, immutable view
//	var b tcq.Batch
//	b.Insert(0, 3, 97, 1.5)
//	res, _ := ds.Apply(ctx, &b)             // atomic, new epoch
//	// snap still answers at its old epoch; ds.Snapshot() sees the new.
//
// Writers serialise among themselves (Apply holds a writer mutex), so
// epochs advance one batch at a time.
type Dataset struct {
	// applyMu serialises writers and the subscriber notifications, so
	// OnApply callbacks observe batches in epoch order.
	applyMu sync.Mutex
	cur     atomic.Pointer[Snapshot]

	// db is the attached durable store directory, nil for in-memory
	// datasets. Guarded by applyMu (writers journal under the gate).
	db *store.DB
	// loadSeconds records the boot-time snapshot/checkpoint load, for
	// PersistStats.
	loadSeconds float64

	subMu   sync.Mutex
	subs    []subscriber
	nextSub uint64
}

// subscriber is one registered OnApply callback with the handle its
// unsubscribe closure removes it by.
type subscriber struct {
	id uint64
	fn func(ApplyResult)
}

// Snapshot is one immutable generation of a dataset: a store plus the
// planner stats collected for it. Snapshots are safe for any number of
// concurrent readers, never change once obtained, and stay fully
// usable after later batches — they are how the facade gives queries a
// consistent view without read locks.
type Snapshot struct {
	st    *dsa.Store
	stats StoreStats
}

// ApplyResult reports one applied batch: the epoch the swap produced
// and the incremental-rebuild cost breakdown.
type ApplyResult struct {
	// Epoch is the dataset generation the batch produced.
	Epoch uint64
	// Stats is the cost breakdown: global searches, sites rebuilt
	// versus structurally shared.
	Stats BatchStats
	// Elapsed is the wall-clock time of the apply.
	Elapsed time.Duration
}

// NewDataset precomputes a disconnection-set deployment and wraps it
// in a mutable dataset — the one-call path from a fragmentation to an
// updatable, concurrently queryable deployment.
func NewDataset(fr *fragment.Fragmentation, opt BuildOptions) (*Dataset, error) {
	st, err := BuildStore(fr, opt)
	if err != nil {
		return nil, err
	}
	return OpenDataset(st)
}

// OpenDataset wraps an already built store in a dataset. The dataset
// takes ownership: mutate the graph through Apply only (the legacy
// in-place dsa update methods would change the store underneath
// pinned snapshots).
func OpenDataset(st *dsa.Store) (*Dataset, error) {
	if st == nil {
		return nil, errors.New("tcq: OpenDataset: nil store")
	}
	d := &Dataset{}
	d.cur.Store(&Snapshot{st: st, stats: CollectStats(st)})
	return d, nil
}

// Snapshot returns the current generation. It is wait-free: one atomic
// pointer load, no locks shared with writers.
func (d *Dataset) Snapshot() *Snapshot { return d.cur.Load() }

// Epoch returns the current generation's update epoch.
func (d *Dataset) Epoch() uint64 { return d.Snapshot().Epoch() }

// Apply validates the batch as a whole and applies it atomically,
// producing a new epoch: either every op lands or none does. Readers
// are never blocked — they keep answering on the previous generation
// until the swap, and queries in flight finish on the snapshot they
// pinned. Only fragments whose edge sets or complementary tables
// changed are re-preprocessed; the rest share structure with the
// previous epoch (see BatchStats.SitesShared).
//
// On refusal the error is a *BatchError carrying a typed error per
// offending op (errors.Is-able: ErrUnknownSite, ErrUnknownNode,
// ErrNegativeWeight, ErrEdgeNotFound, ErrEmptyFragment), and nothing
// is applied. An empty or nil batch returns ErrEmptyBatch.
func (d *Dataset) Apply(ctx context.Context, b *Batch) (ApplyResult, error) {
	if b == nil || b.Len() == 0 {
		return ApplyResult{}, fmt.Errorf("tcq: Apply: %w", ErrEmptyBatch)
	}
	if err := ctx.Err(); err != nil {
		return ApplyResult{}, canceledErr(ctx)
	}
	start := time.Now()
	d.applyMu.Lock()
	defer d.applyMu.Unlock()
	old := d.cur.Load()
	ops := b.edgeOps()
	next, stats, err := old.st.Apply(ctx, ops)
	if err != nil {
		return ApplyResult{}, err
	}
	// Write-ahead discipline: the batch is journaled and fsynced
	// before the swap makes it visible. If the journal refuses, the
	// batch is NOT acknowledged — readers keep the old generation and
	// a restart recovers exactly the epochs that were acknowledged.
	if d.db != nil {
		if err := d.db.Append(next, ops); err != nil {
			return ApplyResult{}, fmt.Errorf("tcq: Apply: %w", err)
		}
	}
	d.cur.Store(&Snapshot{st: next, stats: CollectStats(next)})
	res := ApplyResult{Epoch: next.Epoch(), Stats: stats, Elapsed: time.Since(start)}
	d.subMu.Lock()
	subs := append([]subscriber(nil), d.subs...)
	d.subMu.Unlock()
	for _, s := range subs {
		s.fn(res)
	}
	return res, nil
}

// OnApply registers a callback invoked after every successful Apply,
// while the writer gate is still held — callbacks therefore observe
// batches in epoch order, exactly once each. Serving layers use it for
// eager cache invalidation keyed by the rebuilt fragments. Register
// before serving; callbacks must not call Apply (deadlock). The
// returned func unsubscribes (idempotent) — a layer that shuts down
// must call it, or the dataset keeps the callback (and everything it
// closes over) alive and firing for its own lifetime.
func (d *Dataset) OnApply(fn func(ApplyResult)) (unsubscribe func()) {
	d.subMu.Lock()
	defer d.subMu.Unlock()
	id := d.nextSub
	d.nextSub++
	d.subs = append(d.subs, subscriber{id: id, fn: fn})
	return func() {
		d.subMu.Lock()
		defer d.subMu.Unlock()
		for i, s := range d.subs {
			if s.id == id {
				d.subs = append(d.subs[:i], d.subs[i+1:]...)
				return
			}
		}
	}
}

// refreshStats recollects the planner stats of the current generation
// — the escape hatch for stores mutated out-of-band through the legacy
// in-place dsa update methods.
func (d *Dataset) refreshStats() {
	d.applyMu.Lock()
	defer d.applyMu.Unlock()
	old := d.cur.Load()
	d.cur.Store(&Snapshot{st: old.st, stats: CollectStats(old.st)})
}

// Open wraps the dataset in a facade client: queries go through the
// client (validation, planner, runner), mutations through the
// dataset-backed update methods. Several clients may share one dataset.
func (d *Dataset) Open(opts ...Option) (*Client, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	c := &Client{ds: d, runner: o.runner}
	if c.runner == nil {
		c.runner = storeRunner{}
	}
	return c, nil
}

// Epoch returns the snapshot's update generation.
func (s *Snapshot) Epoch() uint64 { return s.st.Epoch() }

// Stats returns the planner inputs collected for this generation.
func (s *Snapshot) Stats() StoreStats { return s.stats }

// Store exposes the generation's immutable store for the internal
// layers that extend the facade (the serving layer's pooled executor,
// the phe hierarchical planner). Treat it as read-only.
func (s *Snapshot) Store() *dsa.Store { return s.st }

// Preprocessing reports the cost of the preprocessing pass that built
// this generation (the full build for epoch 0, the incremental pass
// for later epochs).
func (s *Snapshot) Preprocessing() PreprocessStats { return s.st.Preprocessing() }

// Query answers a request against this pinned generation with direct
// store execution — the snapshot-scoped counterpart of Client.Query,
// for readers that must not observe later batches mid-request.
func (s *Snapshot) Query(ctx context.Context, req Request) (*Result, error) {
	return queryOn(ctx, s, storeRunner{}, req)
}

// QueryStream starts a lazy answer stream against this pinned
// generation (see Client.QueryStream).
func (s *Snapshot) QueryStream(ctx context.Context, req Request) (*Results, error) {
	return streamOn(ctx, s, storeRunner{}, req)
}

// Connected reports whether target is reachable from source in this
// generation.
func (s *Snapshot) Connected(ctx context.Context, source, target int) (bool, error) {
	res, err := s.Query(ctx, Request{Sources: []int{source}, Targets: []int{target}, Mode: ModeConnectivity})
	if err != nil {
		return false, err
	}
	return res.Answers[0].Reachable, nil
}

// Cost returns the cheapest path cost from source to target in this
// generation; unreachable pairs return an error wrapping ErrNoRoute.
func (s *Snapshot) Cost(ctx context.Context, source, target int) (float64, error) {
	res, err := s.Query(ctx, Request{Sources: []int{source}, Targets: []int{target}, Mode: ModeCost})
	if err != nil {
		return 0, err
	}
	if !res.Answers[0].Reachable {
		return 0, fmt.Errorf("tcq: %w from %d to %d", ErrNoRoute, source, target)
	}
	return res.Answers[0].Cost, nil
}
