package tcq

import (
	"repro/internal/dsa"
	"repro/internal/graph"
)

// OpKind selects what a mutation op does; it is the dsa kind
// re-exported so facade callers need not import internal packages.
type OpKind = dsa.OpKind

// Re-exported op kinds (see dsa.OpKind).
const (
	// OpInsert adds a directed edge to a fragment.
	OpInsert = dsa.OpInsert
	// OpDelete removes one exactly matching (from, to, weight) edge
	// from a fragment.
	OpDelete = dsa.OpDelete
)

// Aliases for the per-op error types Apply reports, so callers can
// errors.As against them without importing internal packages.
type (
	// OpError ties one refused operation to its position in the batch.
	OpError = dsa.OpError
	// BatchError lists every refused op of an atomic batch; when it is
	// returned, nothing was applied.
	BatchError = dsa.BatchError
	// BatchStats reports the cost of one applied batch, including which
	// sites were rebuilt and which were structurally shared.
	BatchStats = dsa.BatchStats
)

// Op is one typed mutation of a deployed graph: insert an edge into
// (or delete an exact edge from) a fragment. Build ops with Insert and
// Delete and collect them in a Batch.
type Op struct {
	// Kind is OpInsert or OpDelete.
	Kind OpKind
	// Fragment is the fragment whose edge set changes.
	Fragment int
	// From and To are the edge endpoints (existing node IDs).
	From, To int
	// Weight is the edge weight; on delete the (From, To, Weight)
	// triple must match a stored fragment edge exactly.
	Weight float64
}

// Insert builds an edge-insertion op.
func Insert(fragment, from, to int, weight float64) Op {
	return Op{Kind: OpInsert, Fragment: fragment, From: from, To: to, Weight: weight}
}

// Delete builds an edge-deletion op.
func Delete(fragment, from, to int, weight float64) Op {
	return Op{Kind: OpDelete, Fragment: fragment, From: from, To: to, Weight: weight}
}

// Batch is an ordered list of mutation ops applied atomically by
// Dataset.Apply: either every op is admissible and all of them land in
// one new epoch, or none do. The zero value is an empty batch; the
// builder methods chain:
//
//	var b tcq.Batch
//	b.Insert(0, 3, 97, 1.5).Delete(0, 3, 42, 2)
//	res, err := ds.Apply(ctx, &b)
//
// Ops are validated in order against the progressively updated edge
// sets, so a batch may delete an edge an earlier op of the same batch
// inserted.
type Batch struct {
	ops []Op
}

// Insert appends an insertion op and returns the batch for chaining.
func (b *Batch) Insert(fragment, from, to int, weight float64) *Batch {
	return b.Add(Insert(fragment, from, to, weight))
}

// Delete appends a deletion op and returns the batch for chaining.
func (b *Batch) Delete(fragment, from, to int, weight float64) *Batch {
	return b.Add(Delete(fragment, from, to, weight))
}

// Add appends ops and returns the batch for chaining.
func (b *Batch) Add(ops ...Op) *Batch {
	b.ops = append(b.ops, ops...)
	return b
}

// Len returns the number of ops in the batch.
func (b *Batch) Len() int { return len(b.ops) }

// Ops returns a copy of the batch's ops in application order.
func (b *Batch) Ops() []Op { return append([]Op(nil), b.ops...) }

// edgeOps converts the batch to the internal op representation.
func (b *Batch) edgeOps() []dsa.EdgeOp {
	out := make([]dsa.EdgeOp, len(b.ops))
	for i, op := range b.ops {
		out[i] = dsa.EdgeOp{
			Kind: op.Kind,
			Frag: op.Fragment,
			Edge: graph.Edge{From: graph.NodeID(op.From), To: graph.NodeID(op.To), Weight: op.Weight},
		}
	}
	return out
}
