package tcq

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/fragment/linear"
	"repro/internal/gen"
)

// cancelClient builds (once, shared across the cancellation tests —
// the 128x128 preprocessing is the expensive part) the grid deployment
// the cancellation scenario specifies: two ~8k-node fragments, large
// enough that every engine's fixpoint runs long past the cancellation
// point. The shared client is read-only under these tests.
var cancelShared struct {
	once sync.Once
	c    *Client
	err  error
}

func cancelClient(t *testing.T) *Client {
	t.Helper()
	cancelShared.once.Do(func() {
		g, err := gen.Grid(gen.GridConfig{Width: 128, Height: 128, DiagonalProb: 0.1, Seed: 1})
		if err != nil {
			cancelShared.err = err
			return
		}
		res, err := linear.Fragment(g, linear.Options{NumFragments: 2})
		if err != nil {
			cancelShared.err = err
			return
		}
		cancelShared.c, cancelShared.err = Build(res.Fragmentation, BuildOptions{})
	})
	if cancelShared.err != nil {
		t.Fatal(cancelShared.err)
	}
	return cancelShared.c
}

// TestCancelPromptness cancels queries mid-fixpoint and asserts the
// facade returns ErrCanceled within 100ms of the cancellation, for
// every engine family (per-entry dijkstra, relational fixpoint, bitset
// levels, dense rounds, pipelined walk). Under the race detector the
// bound scales by 10x: instrumented joins stretch the longest
// non-interruptible unit (one fixpoint round) past the real-time
// bound.
func TestCancelPromptness(t *testing.T) {
	bound := 100 * time.Millisecond
	if raceEnabled {
		bound *= 10
	}
	c := cancelClient(t)
	corner := 128*128 - 1
	cases := []struct {
		name string
		req  Request
	}{
		{"cost seminaive", Request{Sources: []int{0}, Targets: []int{corner}, Mode: ModeCost, Engine: EngineSemiNaive}},
		{"cost dense", Request{Sources: []int{0}, Targets: []int{corner}, Mode: ModeCost, Engine: EngineDense}},
		{"cost dijkstra multi-entry", Request{Sources: entries(64), Targets: []int{corner}, Mode: ModeCost, Engine: EngineDijkstra}},
		{"connectivity bitset", Request{Sources: []int{0}, Targets: []int{corner}, Engine: EngineBitset}},
		{"pipelined dense", Request{Sources: []int{0}, Targets: []int{corner}, Mode: ModePipelined, Engine: EngineDense}},
		{"cost auto", Request{Sources: []int{0}, Targets: []int{corner}, Mode: ModeCost}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := c.Query(ctx, tc.req)
				done <- err
			}()
			// Let the query get into its fixpoint, then pull the plug.
			time.Sleep(2 * time.Millisecond)
			canceledAt := time.Now()
			cancel()
			select {
			case err := <-done:
				// The query may legitimately have finished before the
				// cancel landed; only a late *canceled* return is a bug.
				if err == nil {
					t.Skip("query finished before cancellation landed")
				}
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("got %v, want ErrCanceled", err)
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("%v must also wrap context.Canceled", err)
				}
				if d := time.Since(canceledAt); d > bound {
					t.Fatalf("cancellation took %v, want <%v", d, bound)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("canceled query did not return within 5s")
			}
		})
	}
}

// TestCancelPreCanceled: a context canceled before the call must be
// observed before any work starts.
func TestCancelPreCanceled(t *testing.T) {
	c := cancelClient(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := c.Query(ctx, Request{Sources: []int{0}, Targets: []int{128*128 - 1}, Mode: ModeCost})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("pre-canceled query took %v, want <100ms", d)
	}
	// QueryBatch reports the cancellation and the empty prefix.
	if _, err := c.QueryBatch(ctx, []Request{{Sources: []int{0}, Targets: []int{1}}}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("batch got %v, want ErrCanceled", err)
	}
}

// TestCancelLeaksNoGoroutines runs a burst of canceled queries and
// asserts the goroutine count settles back to its baseline — canceled
// per-site workers and kernel pools must all exit.
func TestCancelLeaksNoGoroutines(t *testing.T) {
	c := cancelClient(t)
	corner := 128*128 - 1
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, err := c.Query(ctx, Request{Sources: []int{0}, Targets: []int{corner}, Mode: ModeCost, Engine: EngineSemiNaive})
		cancel()
		if err != nil && !errors.Is(err, ErrCanceled) {
			t.Fatalf("run %d: %v", i, err)
		}
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("run %d: %v must wrap context.DeadlineExceeded", i, err)
		}
	}
	// Give exiting goroutines a moment, then compare against the
	// baseline with a small tolerance for runtime background noise.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after canceled queries", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
