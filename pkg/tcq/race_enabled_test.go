//go:build race

package tcq

// raceEnabled reports that the race detector is instrumenting this
// build; timing-sensitive assertions scale their bounds accordingly
// (instrumented relational joins run ~5-10x slower, and a fixpoint
// round is not interruptible mid-join).
const raceEnabled = true
