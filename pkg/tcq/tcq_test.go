package tcq

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/fragment"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/internal/graph"
)

// gridClient builds a W×H grid fragmented into frags linear fragments
// and opens a facade client over it.
func gridClient(t *testing.T, w, h, frags int, opt BuildOptions) (*Client, *graph.Graph) {
	t.Helper()
	g, err := gen.Grid(gen.GridConfig{Width: w, Height: h, DiagonalProb: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := linear.Fragment(g, linear.Options{NumFragments: frags})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(res.Fragmentation, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, g
}

func TestRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want error
	}{
		{"empty sources", Request{Targets: []int{1}}, ErrInvalidRequest},
		{"empty targets", Request{Sources: []int{1}}, ErrInvalidRequest},
		{"negative limit", Request{Sources: []int{1}, Targets: []int{2}, Limit: -1}, ErrInvalidRequest},
		{"bad mode", Request{Sources: []int{1}, Targets: []int{2}, Mode: Mode(9)}, ErrUnknownMode},
		{"bad engine", Request{Sources: []int{1}, Targets: []int{2}, Engine: Engine(9)}, ErrUnknownEngine},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.req.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is %v", err, tc.want)
			}
		})
	}
	ok := Request{Sources: []int{5, 3, 5}, Targets: []int{2}, Mode: ModeCost}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	canon, err := ok.canonical()
	if err != nil {
		t.Fatal(err)
	}
	if len(canon.Sources) != 2 || canon.Sources[0] != 3 || canon.Sources[1] != 5 {
		t.Fatalf("canonical sources = %v, want [3 5]", canon.Sources)
	}
}

func TestParseModeAndEngine(t *testing.T) {
	for name, want := range map[string]Mode{
		"": ModeConnectivity, "Connectivity": ModeConnectivity, "COST": ModeCost,
		"pipelined": ModePipelined, "connected": ModeConnectivity, "shortest": ModeCost,
	} {
		got, err := ParseMode(name)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseMode("bogus"); !errors.Is(err, ErrUnknownMode) {
		t.Fatalf("ParseMode(bogus) = %v, want ErrUnknownMode", err)
	}
	for name, want := range map[string]Engine{
		"": EngineAuto, "auto": EngineAuto, "AUTO": EngineAuto,
		"dijkstra": EngineDijkstra, "SemiNaive": EngineSemiNaive,
		"Bitset": EngineBitset, "DENSE": EngineDense,
	} {
		got, err := ParseEngine(name)
		if err != nil || got != want {
			t.Fatalf("ParseEngine(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseEngine("warp"); !errors.Is(err, ErrUnknownEngine) {
		t.Fatalf("ParseEngine(warp) = %v, want ErrUnknownEngine", err)
	}
	// Round trip: every engine's String parses back to itself.
	for _, e := range []Engine{EngineAuto, EngineDijkstra, EngineSemiNaive, EngineBitset, EngineDense} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Fatalf("ParseEngine(%q) = %v, %v; want %v", e.String(), got, err, e)
		}
	}
}

func TestQuerySinglePairMatchesGlobalSearch(t *testing.T) {
	c, g := gridClient(t, 12, 12, 4, BuildOptions{})
	ctx := context.Background()
	res, err := c.Query(ctx, Request{Sources: []int{0}, Targets: []int{143}, Mode: ModeCost})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("got %d answers, want 1", len(res.Answers))
	}
	ans := res.Answers[0]
	if !ans.Reachable {
		t.Fatal("grid corners must be connected")
	}
	if want := g.Distance(0, 143); math.Abs(ans.Cost-want) > 1e-9 {
		t.Fatalf("facade cost %v, global search %v", ans.Cost, want)
	}
	if res.Explain.Engine == EngineAuto {
		t.Fatal("Explain.Engine must be concrete")
	}
	if res.Explain.Reason == "" {
		t.Fatal("Explain.Reason must be set")
	}
}

func TestQueryMultiPairAndLimit(t *testing.T) {
	c, _ := gridClient(t, 8, 8, 2, BuildOptions{})
	ctx := context.Background()
	req := Request{Sources: []int{0, 1}, Targets: []int{62, 63}, Mode: ModeCost}
	res, err := c.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 4 {
		t.Fatalf("got %d answers, want 4", len(res.Answers))
	}
	// Canonical order: sources ascending, then targets ascending.
	wantPairs := [][2]int{{0, 62}, {0, 63}, {1, 62}, {1, 63}}
	for i, p := range wantPairs {
		if res.Answers[i].Source != p[0] || res.Answers[i].Target != p[1] {
			t.Fatalf("answer %d is (%d,%d), want (%d,%d)",
				i, res.Answers[i].Source, res.Answers[i].Target, p[0], p[1])
		}
	}
	if res.LimitHit {
		t.Fatal("LimitHit must be false without a limit")
	}

	req.Limit = 3
	res, err = c.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 3 || !res.LimitHit {
		t.Fatalf("limit 3: got %d answers, LimitHit=%v", len(res.Answers), res.LimitHit)
	}
}

func TestQueryStream(t *testing.T) {
	c, _ := gridClient(t, 8, 8, 2, BuildOptions{})
	rs, err := c.QueryStream(context.Background(), Request{
		Sources: []int{0}, Targets: []int{10, 20, 30}, Mode: ModeCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	var n int
	for rs.Next() {
		if !rs.Answer().Reachable {
			t.Fatalf("pair (%d,%d) unreachable on a connected grid", rs.Answer().Source, rs.Answer().Target)
		}
		n++
		if n == 2 {
			// Early close: the third pair must never be evaluated.
			rs.Close()
		}
	}
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("consumed %d answers after early close, want 2", n)
	}
}

func TestTypedErrors(t *testing.T) {
	c, _ := gridClient(t, 6, 6, 2, BuildOptions{})
	ctx := context.Background()

	if _, err := c.Query(ctx, Request{Sources: []int{0}, Targets: []int{999999}, Mode: ModeCost}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown target: got %v, want ErrUnknownNode", err)
	}
	if _, err := c.Query(ctx, Request{Sources: []int{0}, Targets: []int{1}, Mode: ModeCost, Engine: EngineBitset}); !errors.Is(err, ErrEngineMismatch) {
		t.Fatalf("bitset cost: got %v, want ErrEngineMismatch", err)
	}
	if _, err := c.Query(ctx, Request{Sources: []int{0}, Targets: []int{1}, Mode: ModePipelined, Engine: EngineSemiNaive}); !errors.Is(err, ErrEngineMismatch) {
		t.Fatalf("seminaive pipelined: got %v, want ErrEngineMismatch", err)
	}
	if _, err := c.Cost(ctx, 0, 1); err != nil {
		t.Fatalf("Cost on connected pair: %v", err)
	}
	if _, err := c.InsertEdge(0, 0, 1, -2); !errors.Is(err, ErrNegativeWeight) {
		t.Fatalf("negative insert: got %v, want ErrNegativeWeight", err)
	}
	if _, err := c.InsertEdge(99, 0, 1, 1); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("bad fragment: got %v, want ErrUnknownSite", err)
	}

	// A reachability store answers connectivity but refuses cost modes.
	rc, _ := gridClient(t, 6, 6, 2, BuildOptions{Problem: ProblemReachability})
	if ok, err := rc.Connected(ctx, 0, 35); err != nil || !ok {
		t.Fatalf("reachability store Connected = %v, %v", ok, err)
	}
	if _, err := rc.Query(ctx, Request{Sources: []int{0}, Targets: []int{1}, Mode: ModeCost}); !errors.Is(err, ErrProblemMismatch) {
		t.Fatalf("cost on reachability store: got %v, want ErrProblemMismatch", err)
	}
}

func TestNoRouteConveniences(t *testing.T) {
	// Two disconnected components: 0→1 and 2→3 in separate fragments.
	g := graph.New()
	e1 := graph.Edge{From: 0, To: 1, Weight: 1}
	e2 := graph.Edge{From: 2, To: 3, Weight: 1}
	g.AddEdge(e1)
	g.AddEdge(e2)
	fr, err := fragment.New(g, [][]graph.Edge{{e1}, {e2}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(fr, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	res, err := c.Query(ctx, Request{Sources: []int{0}, Targets: []int{3}, Mode: ModeCost})
	if err != nil {
		t.Fatalf("unreachable pairs are answers, not errors: %v", err)
	}
	if res.Answers[0].Reachable {
		t.Fatal("0 must not reach 3")
	}
	if _, err := c.Cost(ctx, 0, 3); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("Cost on unreachable pair: got %v, want ErrNoRoute", err)
	}
	if _, _, err := c.QueryPath(ctx, 0, 3); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("QueryPath on unreachable pair: got %v, want ErrNoRoute", err)
	}
}

func TestQueryBatch(t *testing.T) {
	c, g := gridClient(t, 8, 8, 2, BuildOptions{})
	ctx := context.Background()
	batch, err := c.QueryBatch(ctx, []Request{
		{Sources: []int{0}, Targets: []int{63}, Mode: ModeCost},
		{Sources: []int{0}, Targets: []int{999999}, Mode: ModeCost}, // bad node
		{Sources: []int{63}, Targets: []int{0}, Mode: ModeConnectivity},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("got %d batch results, want 3", len(batch))
	}
	if batch[0].Err != nil || !batch[0].Result.Answers[0].Reachable {
		t.Fatalf("batch[0] = %+v", batch[0])
	}
	if want := g.Distance(0, 63); math.Abs(batch[0].Result.Answers[0].Cost-want) > 1e-9 {
		t.Fatalf("batch[0] cost %v, want %v", batch[0].Result.Answers[0].Cost, want)
	}
	if !errors.Is(batch[1].Err, ErrUnknownNode) {
		t.Fatalf("batch[1].Err = %v, want ErrUnknownNode", batch[1].Err)
	}
	if batch[2].Err != nil {
		t.Fatalf("batch[2].Err = %v", batch[2].Err)
	}
}

func TestUpdatesThroughClient(t *testing.T) {
	c, _ := gridClient(t, 6, 6, 2, BuildOptions{})
	ctx := context.Background()
	before, err := c.Cost(ctx, 0, 35)
	if err != nil {
		t.Fatal(err)
	}
	epoch := c.Epoch()
	if _, err := c.InsertEdge(0, 0, 5, 0.01); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != epoch+1 {
		t.Fatalf("epoch %d after insert, want %d", c.Epoch(), epoch+1)
	}
	after, err := c.Cost(ctx, 0, 35)
	if err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Fatalf("inserting a shortcut must not lengthen the path: %v > %v", after, before)
	}
	// The oracle: the updated store still agrees with a global search.
	want := c.Store().Fragmentation().Base().Distance(0, 35)
	if math.Abs(after-want) > 1e-9 {
		t.Fatalf("cost after update %v, global search %v", after, want)
	}
}

func TestConnectivityAnswersAreEngineIndependent(t *testing.T) {
	c, _ := gridClient(t, 8, 8, 2, BuildOptions{})
	ctx := context.Background()
	var got []Answer
	for _, e := range []Engine{EngineDijkstra, EngineSemiNaive, EngineBitset, EngineDense} {
		res, err := c.Query(ctx, Request{Sources: []int{0}, Targets: []int{63}, Mode: ModeConnectivity, Engine: e})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		a := res.Answers[0]
		if a.Cost != 0 || a.BestChain != nil {
			t.Fatalf("%v: connectivity answers must carry zero cost and nil chain, got %+v", e, a)
		}
		got = append(got, a)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Reachable != got[0].Reachable {
			t.Fatalf("engines disagree on reachability: %+v vs %+v", got[i], got[0])
		}
	}
}
