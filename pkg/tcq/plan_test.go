package tcq

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// sized builds the smallest stats struct the planner distinguishes on.
func sized(maxNodes int) StoreStats {
	return StoreStats{Problem: ProblemShortestPath, Sites: 4, MaxSiteNodes: maxNodes}
}

// entries returns n distinct node IDs.
func entries(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestPlannerTable(t *testing.T) {
	small := sized(KernelNodeFloor - 1)
	large := sized(KernelNodeFloor)
	fewEntries := entries(KernelEntryFloor - 1)
	manyEntries := entries(KernelEntryFloor)

	cases := []struct {
		name    string
		req     Request
		stats   StoreStats
		want    Engine
		forced  bool
		wantErr error
	}{
		// Connectivity: bitset above either floor, dijkstra below both.
		{"conn small store small entry", Request{Sources: entries(1), Targets: []int{9}}, small, EngineDijkstra, false, nil},
		{"conn large store", Request{Sources: entries(1), Targets: []int{9}}, large, EngineBitset, false, nil},
		{"conn small store large entry", Request{Sources: manyEntries, Targets: []int{9}}, small, EngineBitset, false, nil},
		{"conn small store near-floor entry", Request{Sources: fewEntries, Targets: []int{9}}, small, EngineDijkstra, false, nil},

		// Cost: dense above either floor, dijkstra below both.
		{"cost small store small entry", Request{Sources: entries(1), Targets: []int{9}, Mode: ModeCost}, small, EngineDijkstra, false, nil},
		{"cost large store", Request{Sources: entries(1), Targets: []int{9}, Mode: ModeCost}, large, EngineDense, false, nil},
		{"cost small store large entry", Request{Sources: manyEntries, Targets: []int{9}, Mode: ModeCost}, small, EngineDense, false, nil},

		// Pipelined: node floor only — entry size is irrelevant.
		{"pipe small store", Request{Sources: entries(1), Targets: []int{9}, Mode: ModePipelined}, small, EngineDijkstra, false, nil},
		{"pipe large store", Request{Sources: entries(1), Targets: []int{9}, Mode: ModePipelined}, large, EngineDense, false, nil},
		{"pipe small store large entry", Request{Sources: manyEntries, Targets: []int{9}, Mode: ModePipelined}, small, EngineDijkstra, false, nil},

		// Forced engines pass through, compatible or not.
		{"forced seminaive cost", Request{Sources: entries(1), Targets: []int{9}, Mode: ModeCost, Engine: EngineSemiNaive}, large, EngineSemiNaive, true, nil},
		{"forced bitset conn", Request{Sources: entries(1), Targets: []int{9}, Engine: EngineBitset}, small, EngineBitset, true, nil},
		{"forced bitset cost", Request{Sources: entries(1), Targets: []int{9}, Mode: ModeCost, Engine: EngineBitset}, large, 0, true, ErrEngineMismatch},
		{"forced bitset pipelined", Request{Sources: entries(1), Targets: []int{9}, Mode: ModePipelined, Engine: EngineBitset}, large, 0, true, ErrEngineMismatch},
		{"forced seminaive pipelined", Request{Sources: entries(1), Targets: []int{9}, Mode: ModePipelined, Engine: EngineSemiNaive}, large, 0, true, ErrEngineMismatch},

		// Problem compatibility.
		{"cost on reachability store", Request{Sources: entries(1), Targets: []int{9}, Mode: ModeCost},
			StoreStats{Problem: ProblemReachability, MaxSiteNodes: 500}, 0, false, ErrProblemMismatch},
		{"conn on reachability store", Request{Sources: entries(1), Targets: []int{9}},
			StoreStats{Problem: ProblemReachability, MaxSiteNodes: 500}, EngineBitset, false, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ex, err := Plan(tc.req, tc.stats)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("Plan() err = %v, want errors.Is %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if ex.Engine != tc.want {
				t.Fatalf("Plan() engine = %v, want %v (reason %q)", ex.Engine, tc.want, ex.Reason)
			}
			if ex.Forced != tc.forced {
				t.Fatalf("Plan() forced = %v, want %v", ex.Forced, tc.forced)
			}
			if ex.Reason == "" {
				t.Fatal("Plan() must explain itself")
			}
			if ex.Canonical() != ex.Mode.String()+"/"+ex.Engine.String() {
				t.Fatalf("Canonical() = %q", ex.Canonical())
			}
		})
	}
}

// TestPlannerEquivalence is the property test of the acceptance
// criteria: on random requests, the planner-chosen result must match
// the result of every manually-forced compatible engine, for every
// mode, at small and large entry-set sizes.
func TestPlannerEquivalence(t *testing.T) {
	// Two deployments on either side of the node floor: a 6x6 grid
	// (small sites → dijkstra) and a 24x24 grid whose two ~288-node
	// fragments cross KernelNodeFloor (kernel engines).
	deployments := []struct {
		name       string
		w, h, frag int
	}{
		{"small-sites", 6, 6, 3},
		{"large-sites", 24, 24, 2},
	}
	modeEngines := map[Mode][]Engine{
		ModeConnectivity: {EngineDijkstra, EngineSemiNaive, EngineBitset, EngineDense},
		ModeCost:         {EngineDijkstra, EngineSemiNaive, EngineDense},
		ModePipelined:    {EngineDijkstra, EngineDense},
	}
	ctx := context.Background()
	for _, d := range deployments {
		t.Run(d.name, func(t *testing.T) {
			c, _ := gridClient(t, d.w, d.h, d.frag, BuildOptions{})
			nodes := d.w * d.h
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 4; trial++ {
				// Alternate small and large entry sets so both planner
				// branches are exercised.
				nsrc := 1
				if trial%2 == 1 {
					nsrc = KernelEntryFloor + 1
				}
				srcs := make([]int, nsrc)
				for i := range srcs {
					srcs[i] = rng.Intn(nodes)
				}
				dsts := []int{rng.Intn(nodes), rng.Intn(nodes)}
				for mode, engines := range modeEngines {
					req := Request{Sources: srcs, Targets: dsts, Mode: mode}
					auto, err := c.Query(ctx, req)
					if err != nil {
						t.Fatalf("%v auto: %v", mode, err)
					}
					if auto.Explain.Forced || auto.Explain.Engine == EngineAuto {
						t.Fatalf("%v: bad explain %+v", mode, auto.Explain)
					}
					for _, eng := range engines {
						req.Engine = eng
						forced, err := c.Query(ctx, req)
						if err != nil {
							t.Fatalf("%v %v: %v", mode, eng, err)
						}
						if len(forced.Answers) != len(auto.Answers) {
							t.Fatalf("%v %v: %d answers vs auto %d", mode, eng, len(forced.Answers), len(auto.Answers))
						}
						for i, fa := range forced.Answers {
							aa := auto.Answers[i]
							if fa.Source != aa.Source || fa.Target != aa.Target {
								t.Fatalf("%v %v: answer %d pair (%d,%d) vs (%d,%d)",
									mode, eng, i, fa.Source, fa.Target, aa.Source, aa.Target)
							}
							if fa.Reachable != aa.Reachable {
								t.Fatalf("%v %v: pair (%d,%d) reachable %v vs auto(%v) %v",
									mode, eng, fa.Source, fa.Target, fa.Reachable, auto.Explain.Engine, aa.Reachable)
							}
							if mode != ModeConnectivity && fa.Reachable &&
								math.Abs(fa.Cost-aa.Cost) > 1e-9 {
								t.Fatalf("%v %v: pair (%d,%d) cost %v vs auto(%v) %v",
									mode, eng, fa.Source, fa.Target, fa.Cost, auto.Explain.Engine, aa.Cost)
							}
						}
					}
				}
			}
		})
	}
}
