package tcq

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// gridDataset builds a fragmented grid deployment as a Dataset.
func gridDataset(t *testing.T, w, h, frags int) *Dataset {
	t.Helper()
	c, _ := gridClient(t, w, h, frags, BuildOptions{})
	return c.Dataset()
}

func TestBatchBuilder(t *testing.T) {
	var b Batch
	got := b.Insert(0, 1, 2, 1.5).Delete(1, 3, 4, 2).Add(Insert(2, 5, 6, 0.5))
	if got != &b {
		t.Fatal("builder must chain on the receiver")
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	ops := b.Ops()
	if ops[0].Kind != OpInsert || ops[1].Kind != OpDelete || ops[1].Fragment != 1 || ops[2].Weight != 0.5 {
		t.Fatalf("ops = %+v", ops)
	}
	// Ops returns a copy: mutating it must not affect the batch.
	ops[0].Fragment = 99
	if b.Ops()[0].Fragment != 0 {
		t.Fatal("Ops() leaked the internal slice")
	}
}

// TestSnapshotIsolation: a pinned snapshot keeps answering at its own
// epoch while batches move the dataset on — the copy-on-write contract
// of the mutation API.
func TestSnapshotIsolation(t *testing.T) {
	ds := gridDataset(t, 6, 6, 2)
	ctx := context.Background()
	snap := ds.Snapshot()
	before, err := snap.Cost(ctx, 0, 35)
	if err != nil {
		t.Fatal(err)
	}

	var b Batch
	b.Insert(0, 0, 35, 0.25)
	res, err := ds.Apply(ctx, &b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || ds.Epoch() != 1 {
		t.Fatalf("epoch = %d/%d, want 1/1", res.Epoch, ds.Epoch())
	}
	if res.Stats.Ops != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}

	// The pinned snapshot still answers the pre-batch cost…
	still, err := snap.Cost(ctx, 0, 35)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(still-before) > 1e-9 {
		t.Fatalf("pinned snapshot moved: %v, want %v", still, before)
	}
	if snap.Epoch() != 0 {
		t.Fatalf("pinned snapshot epoch = %d, want 0", snap.Epoch())
	}
	// …while a fresh snapshot sees the shortcut.
	after, err := ds.Snapshot().Cost(ctx, 0, 35)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after-0.25) > 1e-9 {
		t.Fatalf("fresh snapshot cost = %v, want 0.25", after)
	}
}

// TestApplyAtomicThroughFacade: one bad op refuses the whole batch
// with per-op typed errors and applies nothing.
func TestApplyAtomicThroughFacade(t *testing.T) {
	ds := gridDataset(t, 6, 6, 2)
	var b Batch
	b.Insert(0, 0, 1, 1).Insert(0, 0, 999999, 1).Delete(9, 0, 1, 1)
	_, err := ds.Apply(context.Background(), &b)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *BatchError", err)
	}
	if len(be.Ops) != 2 || be.Ops[0].Index != 1 || be.Ops[1].Index != 2 {
		t.Fatalf("op errors = %+v", be.Ops)
	}
	if !errors.Is(err, ErrUnknownNode) || !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("batch error must wrap both refusal sentinels: %v", err)
	}
	if ds.Epoch() != 0 {
		t.Fatalf("epoch = %d after refused batch, want 0", ds.Epoch())
	}
	if _, err := ds.Apply(context.Background(), nil); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("nil batch: got %v, want ErrEmptyBatch", err)
	}
	if _, err := ds.Apply(context.Background(), &Batch{}); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("empty batch: got %v, want ErrEmptyBatch", err)
	}
}

// TestOnApplyOrdering: subscribers see every batch exactly once, in
// epoch order, with the incremental stats attached.
func TestOnApplyOrdering(t *testing.T) {
	ds := gridDataset(t, 6, 6, 2)
	var mu sync.Mutex
	var epochs []uint64
	ds.OnApply(func(r ApplyResult) {
		mu.Lock()
		epochs = append(epochs, r.Epoch)
		mu.Unlock()
	})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		var b Batch
		b.Insert(0, 0, 1, 5).Delete(0, 0, 1, 5)
		if _, err := ds.Apply(ctx, &b); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(epochs) != 3 || epochs[0] != 1 || epochs[1] != 2 || epochs[2] != 3 {
		t.Fatalf("subscriber saw epochs %v, want [1 2 3]", epochs)
	}
}

// TestOnApplyUnsubscribe: a detached subscriber stops receiving
// batches (and stops being retained by the dataset).
func TestOnApplyUnsubscribe(t *testing.T) {
	ds := gridDataset(t, 6, 6, 2)
	var calls atomic.Int64
	unsubscribe := ds.OnApply(func(ApplyResult) { calls.Add(1) })
	ctx := context.Background()
	apply := func() {
		var b Batch
		b.Insert(0, 0, 1, 5).Delete(0, 0, 1, 5)
		if _, err := ds.Apply(ctx, &b); err != nil {
			t.Fatal(err)
		}
	}
	apply()
	unsubscribe()
	unsubscribe() // idempotent
	apply()
	if got := calls.Load(); got != 1 {
		t.Fatalf("subscriber called %d times, want 1 (unsubscribed before the second batch)", got)
	}
}

// TestReadersNeverBlockOnWriters: sustained batches and concurrent
// queries interleave with no reader lock at all — every query pins a
// snapshot and must answer exactly (the inserted shortcut edges are
// heavy, so the optimum is invariant across every epoch). Run with
// -race in CI.
func TestReadersNeverBlockOnWriters(t *testing.T) {
	c, g := gridClient(t, 8, 8, 2, BuildOptions{})
	ds := c.Dataset()
	ctx := context.Background()
	want := g.Distance(0, 63)

	var wrote atomic.Int64
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b Batch
			b.Insert(0, 0, 63, 1e9).Delete(0, 0, 63, 1e9)
			if _, err := ds.Apply(ctx, &b); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			wrote.Add(1)
		}
	}()

	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 20; i++ {
				got, err := c.Cost(ctx, 0, 63)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("reader saw cost %v mid-update, want %v", got, want)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
	if wrote.Load() == 0 {
		t.Fatal("writer never applied a batch")
	}
}
