package tcq

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/store"
)

// Persistence: a Dataset can be saved as a binary TCSF snapshot (one
// file, loadable in milliseconds instead of re-parsing text and
// re-running the preprocessing searches), or attached to a store
// directory where every applied batch is journaled before it is
// acknowledged and periodic checkpoints keep recovery replay short.
//
//	// cold start from a snapshot file
//	ds, err := tcq.LoadSnapshot("city.tcs")
//
//	// durable deployment
//	if !tcq.HasStore(dir) { tcq.InitStore(dir, ds.Snapshot()) }
//	ds, info, err := tcq.OpenStore(dir, tcq.PersistOptions{})
//	defer ds.Close()
//	// every ds.Apply is now journaled; a crash recovers to the exact
//	// last acknowledged epoch.

// PersistOptions configures a durable store directory.
type PersistOptions struct {
	// CheckpointEvery is the number of journaled batches that triggers
	// a fresh snapshot checkpoint (and journal truncation). 0 means
	// store.DefaultCheckpointEvery; negative disables automatic
	// checkpoints.
	CheckpointEvery int
}

// PersistInfo reports what OpenStore recovered.
type PersistInfo struct {
	// CheckpointEpoch is the epoch of the checkpoint image loaded.
	CheckpointEpoch uint64
	// ReplayedRecords is the number of journal records re-applied on
	// top of the checkpoint.
	ReplayedRecords int
	// TornTail reports that a partially written final journal record
	// was found and truncated (a crash mid-append; the record was
	// never acknowledged).
	TornTail bool
	// Epoch is the recovered dataset's epoch.
	Epoch uint64
	// LoadDuration is the wall-clock time of the checkpoint load.
	LoadDuration time.Duration
}

// PersistStats is a point-in-time view of the persistence counters,
// safe to read concurrently with applies. All-zero for datasets with
// no attached store directory.
type PersistStats struct {
	// JournalRecords counts batches journaled since open.
	JournalRecords uint64
	// JournalAppendSeconds is cumulative journal append+fsync time.
	JournalAppendSeconds float64
	// Checkpoints counts snapshot checkpoints written.
	Checkpoints uint64
	// CheckpointSeconds is cumulative checkpoint wall-clock time.
	CheckpointSeconds float64
	// SaveSeconds is cumulative snapshot-write time (checkpoints and
	// explicit saves through this dataset).
	SaveSeconds float64
	// LoadSeconds is the wall-clock time of the boot-time load
	// (snapshot file or checkpoint).
	LoadSeconds float64
}

// SaveSnapshot writes snap as a binary TCSF image at path, atomically
// (temp file + rename — readers never observe a partial image).
// Returns the image size in bytes.
func SaveSnapshot(path string, snap *Snapshot) (int64, error) {
	if snap == nil {
		return 0, errors.New("tcq: SaveSnapshot: nil snapshot")
	}
	return store.SaveFile(path, snap.st)
}

// LoadSnapshot cold-starts a dataset from a TCSF image: the file is
// memory-mapped and the store reconstructed without re-parsing text or
// re-running the preprocessing searches. The dataset is NOT durable —
// applies are in-memory only; use OpenStore for journaled durability.
func LoadSnapshot(path string) (*Dataset, error) {
	start := time.Now()
	st, err := store.Load(path)
	if err != nil {
		return nil, err
	}
	d, err := OpenDataset(st)
	if err != nil {
		return nil, err
	}
	d.loadSeconds = time.Since(start).Seconds()
	return d, nil
}

// HasStore reports whether dir holds a recoverable store directory.
func HasStore(dir string) bool { return store.Exists(dir) }

// InitStore seeds dir (created if needed) with a checkpoint of snap.
// It refuses a directory that already holds a checkpoint — existing
// state must be recovered through OpenStore, never overwritten.
func InitStore(dir string, snap *Snapshot) error {
	if snap == nil {
		return errors.New("tcq: InitStore: nil snapshot")
	}
	return store.Init(dir, snap.st)
}

// OpenStore recovers a dataset from a store directory: loads the
// latest checkpoint, truncates a torn journal tail if a crash left
// one, and replays the journaled batches beyond the checkpoint. The
// returned dataset is durable — every subsequent Apply is journaled
// and fsynced before it is acknowledged, and checkpoints are written
// on the configured cadence. Call Close when done with it.
func OpenStore(dir string, opts PersistOptions) (*Dataset, PersistInfo, error) {
	db, st, rec, err := store.Open(dir, store.Options{CheckpointEvery: opts.CheckpointEvery})
	if err != nil {
		return nil, PersistInfo{}, err
	}
	d, err := OpenDataset(st)
	if err != nil {
		db.Close()
		return nil, PersistInfo{}, err
	}
	d.db = db
	d.loadSeconds = rec.LoadDuration.Seconds()
	info := PersistInfo{
		CheckpointEpoch: rec.CheckpointEpoch,
		ReplayedRecords: rec.ReplayedRecords,
		TornTail:        rec.TornTail,
		Epoch:           rec.Epoch,
		LoadDuration:    rec.LoadDuration,
	}
	return d, info, nil
}

// Persistent reports whether the dataset has an attached store
// directory (applies are journaled).
func (d *Dataset) Persistent() bool { return d.db != nil }

// Checkpoint writes a fresh snapshot of the current generation to the
// store directory and truncates the journal, making the next boot
// replay-free. Typically called at clean shutdown. No-op without an
// attached store directory.
func (d *Dataset) Checkpoint() error {
	if d.db == nil {
		return nil
	}
	d.applyMu.Lock()
	defer d.applyMu.Unlock()
	return d.db.Checkpoint(d.cur.Load().st)
}

// PersistStats returns the dataset's persistence counters.
func (d *Dataset) PersistStats() PersistStats {
	ps := PersistStats{LoadSeconds: d.loadSeconds}
	if d.db == nil {
		return ps
	}
	s := d.db.Stats()
	ps.JournalRecords = s.JournalRecords
	ps.JournalAppendSeconds = s.JournalAppendSeconds
	ps.Checkpoints = s.Checkpoints
	ps.CheckpointSeconds = s.CheckpointSeconds
	ps.SaveSeconds = s.SaveSeconds
	if ps.LoadSeconds == 0 {
		ps.LoadSeconds = s.LoadSeconds
	}
	return ps
}

// Close releases the attached store directory's journal handle (the
// directory stays recoverable). Datasets without one need no Close.
func (d *Dataset) Close() error {
	d.applyMu.Lock()
	defer d.applyMu.Unlock()
	if d.db == nil {
		return nil
	}
	err := d.db.Close()
	d.db = nil
	if err != nil {
		return fmt.Errorf("tcq: close: %w", err)
	}
	return nil
}
