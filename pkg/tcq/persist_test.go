package tcq

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/fragment"
	"repro/internal/gen"
)

func roadDataset(t *testing.T) *Dataset {
	t.Helper()
	g, sets, err := gen.RoadNetwork(gen.RoadConfig{
		Clusters: 3, ClusterWidth: 4, ClusterHeight: 4, Gateways: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := fragment.New(g, sets)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDataset(fr, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// costOf answers one cost query through the snapshot convenience.
func costOf(t *testing.T, snap *Snapshot, src, tgt int) float64 {
	t.Helper()
	c, err := snap.Cost(context.Background(), src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSaveLoadSnapshotFacade(t *testing.T) {
	ds := roadDataset(t)
	path := filepath.Join(t.TempDir(), "ds.tcs")
	n, err := SaveSnapshot(path, ds.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("SaveSnapshot reported %d bytes", n)
	}
	cold, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Epoch() != ds.Epoch() {
		t.Fatalf("epoch drifted: %d vs %d", cold.Epoch(), ds.Epoch())
	}
	if got, want := costOf(t, cold.Snapshot(), 0, 47), costOf(t, ds.Snapshot(), 0, 47); got != want {
		t.Fatalf("cost drifted: %g vs %g", got, want)
	}
	if cold.Persistent() {
		t.Fatal("LoadSnapshot dataset must not be durable")
	}
	if cold.PersistStats().LoadSeconds <= 0 {
		t.Fatal("LoadSeconds not recorded")
	}
	// Close on a non-durable dataset is a safe no-op.
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableApplyAndRecovery(t *testing.T) {
	ds := roadDataset(t)
	dir := filepath.Join(t.TempDir(), "store")
	if HasStore(dir) {
		t.Fatal("HasStore on missing dir")
	}
	if err := InitStore(dir, ds.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !HasStore(dir) {
		t.Fatal("HasStore false after InitStore")
	}

	dur, info, err := OpenStore(dir, PersistOptions{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != ds.Epoch() || info.ReplayedRecords != 0 {
		t.Fatalf("fresh open: %+v", info)
	}
	if !dur.Persistent() {
		t.Fatal("OpenStore dataset must be durable")
	}
	var b Batch
	b.Insert(0, 0, 9, 0.25)
	b.Insert(0, 9, 0, 0.25)
	res, err := dur.Apply(context.Background(), &b)
	if err != nil {
		t.Fatal(err)
	}
	ps := dur.PersistStats()
	if ps.JournalRecords != 1 {
		t.Fatalf("journal records = %d, want 1", ps.JournalRecords)
	}
	want := costOf(t, dur.Snapshot(), 0, 9)
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery replays the journaled batch to the acknowledged epoch.
	rec, info2, err := OpenStore(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if info2.ReplayedRecords != 1 || info2.Epoch != res.Epoch || rec.Epoch() != res.Epoch {
		t.Fatalf("recovery: %+v, want 1 replay to epoch %d", info2, res.Epoch)
	}
	if got := costOf(t, rec.Snapshot(), 0, 9); got != want {
		t.Fatalf("recovered cost %g, want %g", got, want)
	}
}

func TestExplicitCheckpointFacade(t *testing.T) {
	ds := roadDataset(t)
	dir := filepath.Join(t.TempDir(), "store")
	if err := InitStore(dir, ds.Snapshot()); err != nil {
		t.Fatal(err)
	}
	dur, _, err := OpenStore(dir, PersistOptions{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	b.Insert(0, 0, 5, 0.5)
	b.Insert(0, 5, 0, 0.5)
	if _, err := dur.Apply(context.Background(), &b); err != nil {
		t.Fatal(err)
	}
	if err := dur.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if dur.PersistStats().Checkpoints != 1 {
		t.Fatal("checkpoint not counted")
	}
	epoch := dur.Epoch()
	dur.Close()

	rec, info, err := OpenStore(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if info.ReplayedRecords != 0 || rec.Epoch() != epoch {
		t.Fatalf("after checkpoint: %+v at %d, want replay-free at %d", info, rec.Epoch(), epoch)
	}
}
