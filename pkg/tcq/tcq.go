// Package tcq is the public query facade of the repository: the single
// programmatic entry point for transitive-closure queries over
// fragmented graphs with the disconnection set approach (Houtsma, Apers
// & Ceri, ICDE'93).
//
// The packages below it stay what they are — internal/dsa the
// disconnection-set machinery, internal/tc the evaluation kernels,
// internal/server the HTTP serving layer — but callers outside those
// layers go through tcq: build a deployment (Build/BuildStore + Open),
// describe what they want as a Request (source/target sets, a mode, an
// optional engine override, a result limit), and let the planner pick
// the evaluation strategy per query:
//
//	client, err := tcq.Build(fr, tcq.BuildOptions{})
//	res, err := client.Query(ctx, tcq.Request{
//	        Sources: []int{3}, Targets: []int{97}, Mode: tcq.ModeCost,
//	})
//	// res.Explain says which engine answered and why.
//
// Everything is context-aware: cancellation propagates through the
// per-site execution down into the kernels, which observe ctx between
// fixpoint rounds and propagation levels, and surfaces as ErrCanceled.
// All errors wrap the package's typed sentinels (errors.Is-able).
package tcq

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/graph"
)

// Problem selects the precomputed path problem of a deployment; it is
// the dsa problem re-exported so facade callers need not import
// internal packages.
type Problem = dsa.Problem

// Re-exported problem values (see dsa.Problem).
const (
	// ProblemShortestPath precomputes global minimum costs between
	// disconnection-set nodes; such stores answer every mode.
	ProblemShortestPath = dsa.ProblemShortestPath
	// ProblemReachability precomputes only connectivity; such stores
	// answer ModeConnectivity and refuse the cost modes.
	ProblemReachability = dsa.ProblemReachability
)

// ParseProblem resolves a problem name, case-insensitively; unknown
// names return an error wrapping ErrUnknownProblem.
func ParseProblem(name string) (Problem, error) { return dsa.ParseProblem(name) }

// Aliases for the per-query bookkeeping types the facade surfaces, so
// callers can name them without importing internal packages.
type (
	// UpdateStats reports the cost of one applied update.
	UpdateStats = dsa.UpdateStats
	// PreprocessStats reports the complementary-information build cost.
	PreprocessStats = dsa.PreprocessStats
	// SiteWork summarises one site's contribution to an answer.
	SiteWork = dsa.SiteWork
	// Route is a fully materialised shortest path (node sequence +
	// cost), as reconstructed by QueryPath.
	Route = dsa.Route
)

// BuildOptions configures BuildStore/Build.
type BuildOptions struct {
	// MaxChains bounds chain enumeration for cyclic fragmentation
	// graphs (0 = unlimited).
	MaxChains int
	// Problem selects the precomputed path problem (default
	// ProblemShortestPath).
	Problem Problem
}

// BuildStore precomputes a disconnection-set deployment from a
// fragmentation: one site per fragment, complementary information per
// disconnection set. The returned store is the handle Open (and the
// serving layer's server.New) accept; callers that only query can use
// Build and never touch the store.
func BuildStore(fr *fragment.Fragmentation, opt BuildOptions) (*dsa.Store, error) {
	return dsa.Build(fr, dsa.Options{MaxChains: opt.MaxChains, Problem: opt.Problem})
}

// RunStats is the per-pair execution metadata a Runner reports beside
// the raw result — serving-layer cache behaviour, zero for direct
// store execution.
type RunStats struct {
	// CacheHits and CacheMisses count leg-cache lookups of this pair.
	CacheHits, CacheMisses int
}

// Runner executes one planned (source, target) pair query. The default
// runner executes directly on the store with per-site goroutines; the
// serving layer (internal/server) plugs in its pooled, leg-cached
// executor through WithRunner so HTTP traffic and library callers
// share one facade. The engine is always concrete (the planner has
// resolved EngineAuto before any RunPair call).
type Runner interface {
	RunPair(ctx context.Context, source, target graph.NodeID, engine dsa.Engine, mode Mode) (*dsa.Result, RunStats, error)
}

// Option configures Open/Build.
type Option func(*options)

type options struct {
	runner Runner
}

// WithRunner replaces the default direct-on-store executor; the
// serving layer uses it to route facade queries through its worker
// pools and leg cache.
func WithRunner(r Runner) Option {
	return func(o *options) { o.runner = r }
}

// Client is an open facade over one deployment. It is safe for
// concurrent use: queries take a read lock, updates a write lock, so
// in-flight queries never observe a half-applied update.
type Client struct {
	mu     sync.RWMutex
	st     *dsa.Store
	runner Runner
	// ownStore marks the default direct-on-store runner: only then does
	// the client's lock guard query execution (a custom runner
	// synchronises its own store access).
	ownStore bool
	stats    StoreStats
}

// Open wraps a built store in a facade client.
func Open(store *dsa.Store, opts ...Option) (*Client, error) {
	if store == nil {
		return nil, errors.New("tcq: Open: nil store")
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	c := &Client{st: store, runner: o.runner}
	if c.runner == nil {
		c.runner = storeRunner{st: store}
		c.ownStore = true
	}
	c.stats = CollectStats(store)
	return c, nil
}

// Build is BuildStore followed by Open — the one-call path from a
// fragmentation to a queryable client.
func Build(fr *fragment.Fragmentation, bopt BuildOptions, opts ...Option) (*Client, error) {
	st, err := BuildStore(fr, bopt)
	if err != nil {
		return nil, err
	}
	return Open(st, opts...)
}

// Close releases the client. The current implementation holds no
// resources beyond the store, but callers should treat a closed client
// as unusable — future versions may own worker pools.
func (c *Client) Close() error { return nil }

// Store exposes the underlying deployment for the internal layers that
// extend the facade (the serving layer, the phe hierarchical planner).
// Mutating the store directly bypasses the client's locking; use the
// client's update methods instead.
func (c *Client) Store() *dsa.Store { return c.st }

// StoreStats returns the planner inputs collected at Open (refreshed
// after every update applied through the client, or explicitly with
// Refresh).
func (c *Client) StoreStats() StoreStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.stats
}

// Refresh recollects the planner stats from the store — call it after
// mutating the store outside the client (e.g. the serving layer's
// update path).
func (c *Client) Refresh() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = CollectStats(c.st)
}

// Plan resolves the engine the planner would choose for a request
// against the client's current stats, without running anything.
func (c *Client) Plan(req Request) (Explain, error) {
	return Plan(req, c.StoreStats())
}

// Preprocessing reports the complementary-information build cost of
// the deployment.
func (c *Client) Preprocessing() PreprocessStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.st.Preprocessing()
}

// Sites returns the number of deployed sites.
func (c *Client) Sites() int { return c.StoreStats().Sites }

// Problem returns the precomputed path problem.
func (c *Client) Problem() Problem { return c.StoreStats().Problem }

// LooselyConnected reports whether the deployed fragmentation graph is
// acyclic — the precondition for single-chain plans and exact answers.
func (c *Client) LooselyConnected() bool { return c.StoreStats().LooselyConnected }

// Epoch returns the store's update generation.
func (c *Client) Epoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.st.Epoch()
}

// InsertEdge adds a directed edge with the given weight to the
// fragment, rebuilding the affected complementary information. It
// serialises against in-flight queries and refreshes the planner
// stats. Errors wrap ErrUnknownSite, ErrUnknownNode or
// ErrNegativeWeight. On a client with a custom Runner the store is
// owned (and synchronised) by that layer, so direct updates are
// refused with ErrStoreNotOwned — apply them through the owning layer
// (the HTTP server's /update path).
func (c *Client) InsertEdge(fragID, from, to int, weight float64) (UpdateStats, error) {
	if !c.ownStore {
		return UpdateStats{}, fmt.Errorf("tcq: InsertEdge: %w", ErrStoreNotOwned)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	stats, err := c.st.InsertEdge(fragID, graph.Edge{From: graph.NodeID(from), To: graph.NodeID(to), Weight: weight})
	if err == nil {
		c.stats = CollectStats(c.st)
	}
	return stats, err
}

// DeleteEdge removes one occurrence of the exact (from, to, weight)
// edge from the fragment — the inverse of InsertEdge, with the same
// locking, stats refresh and ErrStoreNotOwned refusal.
func (c *Client) DeleteEdge(fragID, from, to int, weight float64) (UpdateStats, error) {
	if !c.ownStore {
		return UpdateStats{}, fmt.Errorf("tcq: DeleteEdge: %w", ErrStoreNotOwned)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	stats, err := c.st.DeleteEdge(fragID, graph.Edge{From: graph.NodeID(from), To: graph.NodeID(to), Weight: weight})
	if err == nil {
		c.stats = CollectStats(c.st)
	}
	return stats, err
}

// Connected reports whether target is reachable from source — the
// paper's "Is A connected to B?" query through the full facade
// (validation, planner, execution).
func (c *Client) Connected(ctx context.Context, source, target int) (bool, error) {
	res, err := c.Query(ctx, Request{Sources: []int{source}, Targets: []int{target}, Mode: ModeConnectivity})
	if err != nil {
		return false, err
	}
	return res.Answers[0].Reachable, nil
}

// Cost returns the cheapest path cost from source to target. Unlike
// Query — which reports unreachability as data — Cost promises a
// route: unreachable pairs return an error wrapping ErrNoRoute.
func (c *Client) Cost(ctx context.Context, source, target int) (float64, error) {
	res, err := c.Query(ctx, Request{Sources: []int{source}, Targets: []int{target}, Mode: ModeCost})
	if err != nil {
		return 0, err
	}
	if !res.Answers[0].Reachable {
		return 0, fmt.Errorf("tcq: %w from %d to %d", ErrNoRoute, source, target)
	}
	return res.Answers[0].Cost, nil
}

// QueryPath answers a single-pair cost query and reconstructs the
// actual node route. Unreachable pairs return an error wrapping
// ErrNoRoute. Route reconstruction reads the store directly, so — like
// the update methods — it is refused with ErrStoreNotOwned on a client
// whose store is owned by a custom Runner.
func (c *Client) QueryPath(ctx context.Context, source, target int) (Answer, *Route, error) {
	if !c.ownStore {
		return Answer{}, nil, fmt.Errorf("tcq: QueryPath: %w", ErrStoreNotOwned)
	}
	if err := ctx.Err(); err != nil {
		return Answer{}, nil, canceledErr(ctx)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	res, route, err := c.st.QueryPath(graph.NodeID(source), graph.NodeID(target))
	if err != nil {
		return Answer{}, nil, err
	}
	if route == nil {
		return Answer{}, nil, fmt.Errorf("tcq: %w from %d to %d", ErrNoRoute, source, target)
	}
	return answerFrom(source, target, ModeCost, res), route, nil
}

// storeRunner is the default executor: direct store execution with one
// goroutine per involved site (the paper's
// one-processor-per-fragment).
type storeRunner struct {
	st *dsa.Store
}

// RunPair implements Runner.
func (r storeRunner) RunPair(ctx context.Context, source, target graph.NodeID, engine dsa.Engine, mode Mode) (*dsa.Result, RunStats, error) {
	if mode == ModePipelined {
		res, err := r.st.QueryPipelinedEngineCtx(ctx, source, target, engine)
		return res, RunStats{}, err
	}
	plan, err := r.st.NewPlan(source, target)
	if err != nil {
		return nil, RunStats{}, err
	}
	res, err := r.st.RunPlanCtx(ctx, plan, engine, true)
	return res, RunStats{}, err
}
