// Package tcq is the public query facade of the repository: the single
// programmatic entry point for transitive-closure queries over
// fragmented graphs with the disconnection set approach (Houtsma, Apers
// & Ceri, ICDE'93).
//
// The packages below it stay what they are — internal/dsa the
// disconnection-set machinery, internal/tc the evaluation kernels,
// internal/server the HTTP serving layer — but callers outside those
// layers go through tcq: build a deployment (Build/BuildStore + Open),
// describe what they want as a Request (source/target sets, a mode, an
// optional engine override, a result limit), and let the planner pick
// the evaluation strategy per query:
//
//	client, err := tcq.Build(fr, tcq.BuildOptions{})
//	res, err := client.Query(ctx, tcq.Request{
//	        Sources: []int{3}, Targets: []int{97}, Mode: tcq.ModeCost,
//	})
//	// res.Explain says which engine answered and why.
//
// The write side mirrors the read side: a Dataset owns the deployment
// across update generations, a Batch of typed Insert/Delete ops is
// validated and applied atomically by Dataset.Apply (producing a new
// epoch, re-preprocessing only the fragments the batch touched), and
// readers pin immutable copy-on-write Snapshots — queries never block
// on writers and never observe a half-applied batch:
//
//	ds := client.Dataset()
//	var b tcq.Batch
//	b.Insert(0, 3, 97, 1.5).Delete(0, 3, 42, 2)
//	res, err := ds.Apply(ctx, &b)   // res.Epoch, res.Stats.SitesShared
//
// Everything is context-aware: cancellation propagates through the
// per-site execution down into the kernels, which observe ctx between
// fixpoint rounds and propagation levels, and surfaces as ErrCanceled.
// All errors wrap the package's typed sentinels (errors.Is-able).
package tcq

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/graph"
)

// Problem selects the precomputed path problem of a deployment; it is
// the dsa problem re-exported so facade callers need not import
// internal packages.
type Problem = dsa.Problem

// Re-exported problem values (see dsa.Problem).
const (
	// ProblemShortestPath precomputes global minimum costs between
	// disconnection-set nodes; such stores answer every mode.
	ProblemShortestPath = dsa.ProblemShortestPath
	// ProblemReachability precomputes only connectivity; such stores
	// answer ModeConnectivity and refuse the cost modes.
	ProblemReachability = dsa.ProblemReachability
)

// ParseProblem resolves a problem name, case-insensitively; unknown
// names return an error wrapping ErrUnknownProblem.
func ParseProblem(name string) (Problem, error) { return dsa.ParseProblem(name) }

// Aliases for the per-query bookkeeping types the facade surfaces, so
// callers can name them without importing internal packages.
type (
	// UpdateStats reports the cost of one applied update.
	UpdateStats = dsa.UpdateStats
	// PreprocessStats reports the complementary-information build cost.
	PreprocessStats = dsa.PreprocessStats
	// SiteWork summarises one site's contribution to an answer.
	SiteWork = dsa.SiteWork
	// Route is a fully materialised shortest path (node sequence +
	// cost), as reconstructed by QueryPath.
	Route = dsa.Route
)

// BuildOptions configures BuildStore/Build.
type BuildOptions struct {
	// MaxChains bounds chain enumeration for cyclic fragmentation
	// graphs (0 = unlimited).
	MaxChains int
	// Problem selects the precomputed path problem (default
	// ProblemShortestPath).
	Problem Problem
}

// BuildStore precomputes a disconnection-set deployment from a
// fragmentation: one site per fragment, complementary information per
// disconnection set. The returned store is the handle Open (and the
// serving layer's server.New) accept; callers that only query can use
// Build and never touch the store.
func BuildStore(fr *fragment.Fragmentation, opt BuildOptions) (*dsa.Store, error) {
	return dsa.Build(fr, dsa.Options{MaxChains: opt.MaxChains, Problem: opt.Problem})
}

// RunStats is the per-pair execution metadata a Runner reports beside
// the raw result — serving-layer cache behaviour, zero for direct
// store execution.
type RunStats struct {
	// CacheHits and CacheMisses count leg-cache lookups of this pair.
	CacheHits, CacheMisses int
	// FallbackSites lists remote-owned sites whose legs the runner
	// executed locally in degraded mode because their owner was
	// unreachable (down, timed out, or circuit-breaker open). Empty on
	// healthy clusters and single-node runners. Queries surface the
	// union per placement entry as SitePlacement.Fallback.
	FallbackSites []int
}

// Runner executes one planned (source, target) pair query against a
// pinned snapshot. The default runner executes directly on the
// snapshot's store with per-site goroutines; the serving layer
// (internal/server) plugs in its pooled, leg-cached executor through
// WithRunner so HTTP traffic and library callers share one facade.
// The engine is always concrete (the planner has resolved EngineAuto
// before any RunPair call), and the snapshot is the generation the
// whole request pinned — runners must execute on it, not on whatever
// generation is current, so multi-pair requests stay self-consistent
// under concurrent updates.
type Runner interface {
	RunPair(ctx context.Context, snap *Snapshot, source, target graph.NodeID, engine dsa.Engine, mode Mode) (*dsa.Result, RunStats, error)
}

// Option configures Open/Build.
type Option func(*options)

type options struct {
	runner Runner
}

// WithRunner replaces the default direct-on-store executor; the
// serving layer uses it to route facade queries through its worker
// pools and leg cache.
func WithRunner(r Runner) Option {
	return func(o *options) { o.runner = r }
}

// Client is an open facade over one deployment. It is safe for
// concurrent use without any reader locking: every query pins the
// dataset generation current when it starts (an atomic pointer load)
// and runs on that immutable snapshot to completion, so in-flight
// queries never observe a half-applied update and never block on
// writers.
type Client struct {
	ds     *Dataset
	runner Runner
}

// Open wraps a built store in a facade client (creating a dataset
// around the store). To share one dataset between a client and other
// layers — or between several clients — build the Dataset first and
// use Dataset.Open.
func Open(store *dsa.Store, opts ...Option) (*Client, error) {
	ds, err := OpenDataset(store)
	if err != nil {
		return nil, err
	}
	return ds.Open(opts...)
}

// Build is BuildStore followed by Open — the one-call path from a
// fragmentation to a queryable client.
func Build(fr *fragment.Fragmentation, bopt BuildOptions, opts ...Option) (*Client, error) {
	st, err := BuildStore(fr, bopt)
	if err != nil {
		return nil, err
	}
	return Open(st, opts...)
}

// Close releases the client. The current implementation holds no
// resources beyond the dataset, but callers should treat a closed
// client as unusable — future versions may own worker pools.
func (c *Client) Close() error { return nil }

// Dataset returns the mutable deployment handle behind the client —
// the write side of the facade (Apply, Snapshot, OnApply).
func (c *Client) Dataset() *Dataset { return c.ds }

// Snapshot pins the current generation: an immutable view that stays
// consistent (and fully queryable) across any number of later batches.
func (c *Client) Snapshot() *Snapshot { return c.ds.Snapshot() }

// Store exposes the current generation's store for the internal layers
// that extend the facade (the serving layer, the phe hierarchical
// planner). Treat it as read-only; mutate through Apply.
func (c *Client) Store() *dsa.Store { return c.ds.Snapshot().st }

// StoreStats returns the planner inputs of the current generation
// (recollected on every applied batch).
func (c *Client) StoreStats() StoreStats {
	return c.ds.Snapshot().stats
}

// Refresh recollects the planner stats from the current store — the
// escape hatch for stores mutated out-of-band through the legacy
// in-place dsa update methods (batches applied through the facade
// refresh automatically).
func (c *Client) Refresh() {
	c.ds.refreshStats()
}

// Plan resolves the engine the planner would choose for a request
// against the client's current stats, without running anything.
func (c *Client) Plan(req Request) (Explain, error) {
	return Plan(req, c.StoreStats())
}

// Preprocessing reports the complementary-information build cost of
// the current generation.
func (c *Client) Preprocessing() PreprocessStats {
	return c.ds.Snapshot().Preprocessing()
}

// Sites returns the number of deployed sites.
func (c *Client) Sites() int { return c.StoreStats().Sites }

// Problem returns the precomputed path problem.
func (c *Client) Problem() Problem { return c.StoreStats().Problem }

// LooselyConnected reports whether the deployed fragmentation graph is
// acyclic — the precondition for single-chain plans and exact answers.
func (c *Client) LooselyConnected() bool { return c.StoreStats().LooselyConnected }

// Epoch returns the dataset's current update generation.
func (c *Client) Epoch() uint64 {
	return c.ds.Epoch()
}

// Apply routes a batch through the client's dataset: validated as a
// whole, applied atomically, producing a new epoch while in-flight
// queries keep answering on the generations they pinned. See
// Dataset.Apply for error semantics.
func (c *Client) Apply(ctx context.Context, b *Batch) (ApplyResult, error) {
	return c.ds.Apply(ctx, b)
}

// InsertEdge adds a directed edge with the given weight to the
// fragment — the single-op convenience over Apply, with the same
// non-blocking swap semantics. Errors wrap ErrUnknownSite,
// ErrUnknownNode or ErrNegativeWeight.
func (c *Client) InsertEdge(fragID, from, to int, weight float64) (UpdateStats, error) {
	return c.applyOne(Insert(fragID, from, to, weight))
}

// DeleteEdge removes one occurrence of the exact (from, to, weight)
// edge from the fragment — the inverse of InsertEdge. Errors
// additionally wrap ErrEdgeNotFound and ErrEmptyFragment.
func (c *Client) DeleteEdge(fragID, from, to int, weight float64) (UpdateStats, error) {
	return c.applyOne(Delete(fragID, from, to, weight))
}

// applyOne applies a single-op batch, unwrapping the batch envelope to
// the op's own typed error so the historical error shapes survive.
func (c *Client) applyOne(op Op) (UpdateStats, error) {
	var b Batch
	res, err := c.ds.Apply(context.Background(), b.Add(op))
	if err != nil {
		var be *BatchError
		if errors.As(err, &be) && len(be.Ops) == 1 {
			return UpdateStats{}, be.Ops[0].Err
		}
		return UpdateStats{}, err
	}
	return UpdateStats{
		RecomputedSets: res.Stats.RecomputedSets,
		DijkstraRuns:   res.Stats.DijkstraRuns,
		LocalOnly:      res.Stats.LocalOnly,
	}, nil
}

// Connected reports whether target is reachable from source — the
// paper's "Is A connected to B?" query through the full facade
// (validation, planner, execution).
func (c *Client) Connected(ctx context.Context, source, target int) (bool, error) {
	res, err := c.Query(ctx, Request{Sources: []int{source}, Targets: []int{target}, Mode: ModeConnectivity})
	if err != nil {
		return false, err
	}
	return res.Answers[0].Reachable, nil
}

// Cost returns the cheapest path cost from source to target. Unlike
// Query — which reports unreachability as data — Cost promises a
// route: unreachable pairs return an error wrapping ErrNoRoute.
func (c *Client) Cost(ctx context.Context, source, target int) (float64, error) {
	res, err := c.Query(ctx, Request{Sources: []int{source}, Targets: []int{target}, Mode: ModeCost})
	if err != nil {
		return 0, err
	}
	if !res.Answers[0].Reachable {
		return 0, fmt.Errorf("tcq: %w from %d to %d", ErrNoRoute, source, target)
	}
	return res.Answers[0].Cost, nil
}

// QueryPath answers a single-pair cost query and reconstructs the
// actual node route, reading the pinned snapshot directly (snapshots
// are immutable, so this is safe on every client, including
// server-backed ones). Unreachable pairs return an error wrapping
// ErrNoRoute.
func (c *Client) QueryPath(ctx context.Context, source, target int) (Answer, *Route, error) {
	if err := ctx.Err(); err != nil {
		return Answer{}, nil, canceledErr(ctx)
	}
	snap := c.ds.Snapshot()
	res, route, err := snap.st.QueryPath(graph.NodeID(source), graph.NodeID(target))
	if err != nil {
		return Answer{}, nil, err
	}
	if route == nil {
		return Answer{}, nil, fmt.Errorf("tcq: %w from %d to %d", ErrNoRoute, source, target)
	}
	return answerFrom(source, target, ModeCost, res), route, nil
}

// storeRunner is the default executor: direct execution on the pinned
// snapshot's store with one goroutine per involved site (the paper's
// one-processor-per-fragment).
type storeRunner struct{}

// RunPair implements Runner.
func (storeRunner) RunPair(ctx context.Context, snap *Snapshot, source, target graph.NodeID, engine dsa.Engine, mode Mode) (*dsa.Result, RunStats, error) {
	if mode == ModePipelined {
		res, err := snap.st.QueryPipelinedEngineCtx(ctx, source, target, engine)
		return res, RunStats{}, err
	}
	plan, err := snap.st.NewPlan(source, target)
	if err != nil {
		return nil, RunStats{}, err
	}
	res, err := snap.st.RunPlanCtx(ctx, plan, engine, true)
	return res, RunStats{}, err
}
