package tcq

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dsa"
)

// Typed errors of the public facade. Every error the package returns
// wraps exactly one of these sentinels, so callers branch with
// errors.Is instead of matching message text. Most are re-exports of
// the layer that first detects the condition (internal/dsa, and through
// it the internal/tc kernels), which makes errors.Is work identically
// whether an error bubbled up from a kernel, the planner or the
// request validator.
var (
	// ErrInvalidRequest reports a Request that fails validation: empty
	// source or target set, or a negative limit.
	ErrInvalidRequest = errors.New("invalid request")
	// ErrUnknownMode reports a mode name or value outside
	// connectivity|cost|pipelined.
	ErrUnknownMode = errors.New("unknown mode")
	// ErrUnknownEngine reports an engine name or value outside
	// auto|dijkstra|seminaive|bitset|dense.
	ErrUnknownEngine = dsa.ErrUnknownEngine
	// ErrUnknownProblem reports a problem name outside
	// shortestpath|reachability.
	ErrUnknownProblem = dsa.ErrUnknownProblem
	// ErrUnknownNode reports a query endpoint that is not a node of the
	// deployed graph (or belongs to no fragment).
	ErrUnknownNode = dsa.ErrUnknownNode
	// ErrUnknownSite reports a fragment/site ID outside the deployment.
	ErrUnknownSite = dsa.ErrUnknownSite
	// ErrEngineMismatch reports a forced engine that cannot serve the
	// requested mode — the connectivity-only bitset engine asked for
	// costs, or a non-vector-seeded engine asked to pipeline.
	ErrEngineMismatch = dsa.ErrEngineMismatch
	// ErrProblemMismatch reports a store whose precomputed problem
	// cannot serve the requested mode — a reachability store asked for
	// costs.
	ErrProblemMismatch = dsa.ErrProblemMismatch
	// ErrNoRoute reports that no path connects the requested endpoints.
	// Query answers carry reachability as data (Answer.Reachable); the
	// conveniences that promise a route (Cost, QueryPath) return this.
	ErrNoRoute = dsa.ErrNoRoute
	// ErrNegativeWeight reports a negative edge weight refused by the
	// cost kernels or by an update.
	ErrNegativeWeight = dsa.ErrNegativeWeight
	// ErrEmptyBatch reports a Dataset.Apply call with a nil or empty
	// batch.
	ErrEmptyBatch = dsa.ErrEmptyBatch
	// ErrEdgeNotFound reports a delete op whose (from, to, weight)
	// triple matches no stored edge of the named fragment.
	ErrEdgeNotFound = dsa.ErrEdgeNotFound
	// ErrEmptyFragment reports a delete op that would leave a fragment
	// with no edges; the batch is refused.
	ErrEmptyFragment = dsa.ErrEmptyFragment
	// ErrCanceled reports that the query observed context cancellation
	// and abandoned its partial work. Errors wrapping it also wrap the
	// context's own error, so errors.Is(err, context.Canceled) keeps
	// working.
	ErrCanceled = dsa.ErrCanceled

	// ErrPeerDown reports an unreachable cluster peer: a query whose
	// site route includes a remotely owned fragment, or an update
	// fan-out, could not reach the owning node at all.
	ErrPeerDown = cluster.ErrPeerDown
	// ErrPeerTimeout reports a cluster peer that accepted the RPC but
	// did not answer within the per-RPC deadline.
	ErrPeerTimeout = cluster.ErrPeerTimeout
	// ErrEpochSkew reports an epoch-coherence violation between cluster
	// nodes: a remote leg could not be served at the generation the
	// query pinned, or an update fan-out left peers on diverging
	// epochs. Cross-node reads fail with this typed error instead of
	// silently mixing generations; retrying after the cluster
	// converges (or re-applying the update) clears it.
	ErrEpochSkew = cluster.ErrEpochSkew
	// ErrBadPeerResponse reports a cluster peer answering outside the
	// transport protocol (undecodable body, mismatched fact columns, an
	// unknown error code) — a version or configuration mismatch between
	// nodes.
	ErrBadPeerResponse = cluster.ErrBadPeerResponse
	// ErrBreakerOpen reports a remote leg refused without an RPC because
	// the owning peer's circuit breaker is open (the peer failed
	// repeatedly and is inside its recovery interval). Errors wrapping
	// it also wrap ErrPeerDown, so existing peer-failure handling
	// applies unchanged; on the serving layer these legs fall back to
	// degraded local execution instead of surfacing at all.
	ErrBreakerOpen = cluster.ErrBreakerOpen
)

// canceledErr wraps a context error as an ErrCanceled, the same
// convention as the dsa and tc layers.
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("tcq: %w (%w)", ErrCanceled, context.Cause(ctx))
}
