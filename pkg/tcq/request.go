package tcq

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dsa"
)

// Mode selects what a query computes.
type Mode int

const (
	// ModeConnectivity answers "is T reachable from S?" — the paper's
	// boolean connection query. It works on every store (a shortest-path
	// store's complementary information subsumes connectivity) and with
	// every engine. It is the zero value: the cheapest question every
	// deployment can answer.
	ModeConnectivity Mode = iota
	// ModeCost answers "what is the cost of the cheapest path from S to
	// T?" — the paper's headline query. It needs a shortest-path store
	// and a cost-capable engine (everything but bitset).
	ModeCost
	// ModePipelined answers the cost query with pipelined chain
	// evaluation: the legs of each fragment chain run in sequence, each
	// seeded with the running cost vector of the previous legs. It needs
	// a vector-seeded engine (dijkstra or dense).
	ModePipelined
)

// String names the mode the way the HTTP API and CLI flags spell it.
func (m Mode) String() string {
	switch m {
	case ModeConnectivity:
		return "connectivity"
	case ModeCost:
		return "cost"
	case ModePipelined:
		return "pipelined"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Valid reports whether m is a known mode.
func (m Mode) Valid() bool {
	return m == ModeConnectivity || m == ModeCost || m == ModePipelined
}

// ParseMode resolves a mode name, case-insensitively. The empty string
// is ModeConnectivity (the zero value); unknown names return an error
// wrapping ErrUnknownMode.
func ParseMode(name string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "connectivity", "connected", "reachability":
		return ModeConnectivity, nil
	case "cost", "shortest", "shortestpath":
		return ModeCost, nil
	case "pipelined", "pipeline":
		return ModePipelined, nil
	}
	return 0, fmt.Errorf("tcq: %w %q (want connectivity, cost or pipelined)", ErrUnknownMode, name)
}

// Engine selects the per-site evaluation algorithm. The zero value
// EngineAuto delegates the choice to the planner (Plan), which is the
// intended way to use the facade — the concrete engines exist for
// benchmarking, testing and explicit overrides.
type Engine int

const (
	// EngineAuto lets the planner pick the engine from the query mode,
	// the entry-set size and the deployment's fragment statistics.
	EngineAuto Engine = iota
	// EngineDijkstra runs one Dijkstra per entry node — the fast
	// practical engine for small fragments and small entry sets.
	EngineDijkstra
	// EngineSemiNaive runs the relational semi-naive min-cost fixpoint —
	// the paper's own formulation, kept as the reference engine.
	EngineSemiNaive
	// EngineBitset runs the bitset-parallel reachability kernel —
	// connectivity only.
	EngineBitset
	// EngineDense runs the CSR + parallel Bellman-Ford cost kernel —
	// the kernel-class engine for cost queries over large fragments.
	EngineDense
)

// String names the engine the way the HTTP API and CLI flags spell it.
func (e Engine) String() string {
	if e == EngineAuto {
		return "auto"
	}
	if d, err := e.dsa(); err == nil {
		return d.String()
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// Valid reports whether e is a known engine (including EngineAuto).
func (e Engine) Valid() bool {
	return e >= EngineAuto && e <= EngineDense
}

// dsa maps a concrete engine to its internal value. EngineAuto has no
// mapping — resolve it with Plan first.
func (e Engine) dsa() (dsa.Engine, error) {
	switch e {
	case EngineDijkstra:
		return dsa.EngineDijkstra, nil
	case EngineSemiNaive:
		return dsa.EngineSemiNaive, nil
	case EngineBitset:
		return dsa.EngineBitset, nil
	case EngineDense:
		return dsa.EngineDense, nil
	}
	return 0, fmt.Errorf("tcq: %w %d (not a concrete engine)", ErrUnknownEngine, int(e))
}

// ParseEngine resolves an engine name, case-insensitively. The empty
// string and "auto" are EngineAuto; the concrete names are the ones
// dsa.ParseEngine accepts. Unknown names return an error wrapping
// ErrUnknownEngine.
func ParseEngine(name string) (Engine, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "auto":
		return EngineAuto, nil
	}
	d, err := dsa.ParseEngine(name)
	if err != nil {
		return 0, fmt.Errorf("tcq: %w %q (want auto, dijkstra, seminaive, bitset or dense)", ErrUnknownEngine, name)
	}
	switch d {
	case dsa.EngineDijkstra:
		return EngineDijkstra, nil
	case dsa.EngineSemiNaive:
		return EngineSemiNaive, nil
	case dsa.EngineBitset:
		return EngineBitset, nil
	default:
		return EngineDense, nil
	}
}

// Request is one facade query: compute Mode for every (source, target)
// pair of the cross product Sources × Targets. The zero values of the
// optional fields mean "let the system decide": EngineAuto delegates
// engine selection to the planner and Limit 0 returns every pair.
//
// Requests are validated (and their node sets canonicalised — sorted,
// deduplicated) exactly once, at the top of Query/QueryBatch/
// QueryStream/Plan; everything below works on the canonical form.
type Request struct {
	// Sources and Targets are the query entry and exit sets as raw node
	// IDs. Both must be non-empty.
	Sources []int
	// Targets — see Sources.
	Targets []int
	// Mode selects connectivity, cost or pipelined evaluation (zero
	// value: connectivity).
	Mode Mode
	// Engine optionally forces a concrete engine; EngineAuto (the zero
	// value) lets the planner choose.
	Engine Engine
	// Limit caps the number of answers (0 = all pairs). When the cap
	// fires, Result.LimitHit is set.
	Limit int
}

// Validate checks the request without running it: non-empty source and
// target sets, a known mode and engine, a non-negative limit. The
// returned error wraps ErrInvalidRequest, ErrUnknownMode or
// ErrUnknownEngine.
func (r Request) Validate() error {
	_, err := r.canonical()
	return err
}

// canonical validates and returns the canonical form of the request:
// sources and targets sorted ascending with duplicates removed. The
// canonical form is what the planner keys on and what pair iteration
// orders by, so equal requests always produce byte-identical plans.
func (r Request) canonical() (Request, error) {
	if len(r.Sources) == 0 {
		return r, fmt.Errorf("tcq: %w: empty source set", ErrInvalidRequest)
	}
	if len(r.Targets) == 0 {
		return r, fmt.Errorf("tcq: %w: empty target set", ErrInvalidRequest)
	}
	if r.Limit < 0 {
		return r, fmt.Errorf("tcq: %w: negative limit %d", ErrInvalidRequest, r.Limit)
	}
	if !r.Mode.Valid() {
		return r, fmt.Errorf("tcq: %w %d", ErrUnknownMode, int(r.Mode))
	}
	if !r.Engine.Valid() {
		return r, fmt.Errorf("tcq: %w %d", ErrUnknownEngine, int(r.Engine))
	}
	r.Sources = sortedDedup(r.Sources)
	r.Targets = sortedDedup(r.Targets)
	return r, nil
}

// sortedDedup returns a sorted copy of ids with duplicates removed.
func sortedDedup(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	w := 0
	for i, id := range out {
		if i == 0 || id != out[w-1] {
			out[w] = id
			w++
		}
	}
	return out[:w]
}
