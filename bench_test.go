// Package benches holds the repository-root benchmark harness: one
// benchmark per table and measured claim of the ICDE'93 paper (the
// experiment index lives in DESIGN.md §3; the recorded paper-vs-measured
// comparison in EXPERIMENTS.md). Each experiment benchmark prints the
// paper-style table once, then times the regeneration; the Benchmark*
// functions further down micro-benchmark the substrates.
//
// Run with:
//
//	go test -bench=. -benchmem
package benches

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/fragment/bea"
	"repro/internal/fragment/center"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/sim"
	"repro/internal/tc"
)

// printOnce guards the one-time table printouts across -benchtime
// iterations.
var printOnce sync.Map

// printTable prints s the first time key is seen.
func printTable(key, s string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(s)
	}
}

// BenchmarkTable1 regenerates Table 1 (three algorithms on 4×25
// transportation graphs) and reports the headline characteristics as
// custom metrics.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.Table1(3, 42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("table1", tbl.Format())
		for _, r := range tbl.Rows {
			if r.Algorithm == "bond-energy" {
				b.ReportMetric(r.C.DS, "beaDS")
			}
			if r.Algorithm == "linear" {
				b.ReportMetric(r.C.DS, "linDS")
			}
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (distributed centers, 4×150).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.Table2(2, 42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("table2", tbl.Format())
		for _, r := range tbl.Rows {
			if r.Algorithm == "distributed centers" {
				b.ReportMetric(r.C.DS, "distDS")
				b.ReportMetric(r.C.AF, "distAF")
			}
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (four variants on 100-node
// general graphs).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.Table3(3, 42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("table3", tbl.Format())
		for _, r := range tbl.Rows {
			if r.Algorithm == "bond-energy" {
				b.ReportMetric(r.C.DS, "beaDS")
				b.ReportMetric(r.C.AF, "beaAF")
			}
		}
	}
}

// BenchmarkSpeedup regenerates the §2.1 linear speed-up series on
// cluster chains of 2–8 sites.
func BenchmarkSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Speedup(50, 5, 42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("speedup", r.Format())
		if n := len(r.Points); n > 0 {
			b.ReportMetric(r.Points[n-1].Speedup, "speedup8")
		}
	}
}

// BenchmarkIterations regenerates the reduced-iterations series (§2.1:
// iterations track fragment diameter, not graph diameter).
func BenchmarkIterations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Iterations(4, 20, 5, 42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("iterations", r.Format())
		if n := len(r.Points); n > 0 {
			b.ReportMetric(r.Points[n-1].MaxSiteIterations, "siteIters")
			b.ReportMetric(r.Points[0].GlobalIterations, "globalIters")
		}
	}
}

// BenchmarkFig8StartNodes regenerates the Fig. 8 start-node-choice
// comparison.
func BenchmarkFig8StartNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig8(3, 42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig8", r.Format())
		b.ReportMetric(r.AlongDS, "alongDS")
		b.ReportMetric(r.AcrossDS, "acrossDS")
	}
}

// BenchmarkPHE regenerates the §5 parallel-hierarchical-evaluation
// comparison on fully linked cluster topologies.
func BenchmarkPHE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.PHE(6, 42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("phe", r.Format())
		if n := len(r.Points); n > 0 {
			b.ReportMetric(r.Points[n-1].DSAChains, "dsaChains")
			b.ReportMetric(r.Points[n-1].PHEChains, "pheChains")
		}
	}
}

// BenchmarkImpact regenerates the §5 follow-up experiment: which
// fragmentation characteristic dominates actual parallel query
// performance (the paper's announced PRISMA experiments, on the
// simulated machine).
func BenchmarkImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Impact(3, 6, 42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("impact", r.Format())
	}
}

// BenchmarkAmortize regenerates the preprocessing-amortisation analysis
// (§2.1: "pre-processing costs may be amortized over many queries").
func BenchmarkAmortize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Amortize(5, 42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("amortize", r.Format())
		if n := len(r.Points); n > 0 {
			b.ReportMetric(float64(r.Points[n-1].BreakEvenQueries), "breakEven")
		}
	}
}

// BenchmarkKConnCost regenerates the rejected-approach cost comparison
// (§3: the k-connectivity analysis "is very computation intensive").
func BenchmarkKConnCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.KConnCost(42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("kconn", r.Format())
	}
}

// BenchmarkAblationBEAThreshold sweeps the bond-energy threshold.
func BenchmarkAblationBEAThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := bench.AblationBEAThreshold(2, 42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("abl-bea-threshold", a.Format())
	}
}

// BenchmarkAblationBEAMode compares threshold vs local-minimum
// splitting.
func BenchmarkAblationBEAMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := bench.AblationBEAMode(2, 42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("abl-bea-mode", a.Format())
	}
}

// BenchmarkAblationCenterVariant compares the two growth schedules.
func BenchmarkAblationCenterVariant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := bench.AblationCenterVariant(2, 42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("abl-center-variant", a.Format())
	}
}

// BenchmarkAblationCenterPool sweeps the candidate pool size.
func BenchmarkAblationCenterPool(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := bench.AblationCenterPool(2, 42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("abl-center-pool", a.Format())
	}
}

// BenchmarkAblationLinearStartCount sweeps the linear algorithm's
// start-node count.
func BenchmarkAblationLinearStartCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := bench.AblationLinearStartCount(2, 42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("abl-linear-start", a.Format())
	}
}

// --- substrate micro-benchmarks ---

// benchGraph caches a mid-size transportation graph for the micro
// benchmarks.
var benchGraph = func() *graph.Graph {
	g, err := gen.Transportation(gen.TransportConfig{Clusters: 4, Cluster: gen.Defaults(25, 42)})
	if err != nil {
		panic(err)
	}
	return g
}()

// BenchmarkSemiNaiveClosure times the relational semi-naive closure on
// a 4×25 transportation graph.
func BenchmarkSemiNaiveClosure(b *testing.B) {
	rel := relation.FromGraph(benchGraph)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tc.SemiNaiveClosure(rel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSmartClosure times the squaring closure. Squaring joins the
// full (dense) closure with itself, so it runs on a smaller graph than
// the delta-based semi-naive benchmark.
func BenchmarkSmartClosure(b *testing.B) {
	g, err := gen.Transportation(gen.TransportConfig{Clusters: 2, Cluster: gen.Defaults(12, 42)})
	if err != nil {
		b.Fatal(err)
	}
	rel := relation.FromGraph(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tc.SmartClosure(rel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarshallClosure times the dense matrix closure.
func BenchmarkWarshallClosure(b *testing.B) {
	rel := relation.FromGraph(benchGraph)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tc.WarshallClosure(rel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBitsetClosure times the bitset-parallel kernel on the same
// graph as BenchmarkSemiNaiveClosure, for a direct comparison.
func BenchmarkBitsetClosure(b *testing.B) {
	rel := relation.FromGraph(benchGraph)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tc.BitsetClosure(rel); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGrid caches the 64×64 lattice of the engine shoot-out (one big
// strongly connected component, diameter ≈ 126).
var benchGrid = func() *graph.Graph {
	g, err := gen.Grid(gen.GridConfig{Width: 64, Height: 64, DiagonalProb: 0.1, Seed: 42})
	if err != nil {
		panic(err)
	}
	return g
}()

// BenchmarkGridReachableFromSemiNaive times the per-leg semi-naive
// engine (entry-set-restricted reachability) on the 64×64 grid.
func BenchmarkGridReachableFromSemiNaive(b *testing.B) {
	rel := relation.FromGraph(benchGrid)
	srcs := []graph.NodeID{0, 2080}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tc.ReachableFrom(rel, srcs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridReachableFromBitset times the bitset-parallel engine on
// the identical subquery.
func BenchmarkGridReachableFromBitset(b *testing.B) {
	rel := relation.FromGraph(benchGrid)
	srcs := []graph.NodeID{0, 2080}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tc.BitsetReachableFrom(rel, srcs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngines regenerates the engine shoot-out table once and
// times the sweep.
func BenchmarkEngines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Engines(2, 42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("engines", r.Format())
	}
}

// BenchmarkCost times the two cost-capable per-leg engines on the
// identical entry-set-restricted shortest-path cost subquery over the
// 64×64 grid: the semi-naive relational min-cost fixpoint versus the
// dense CSR + level-synchronous Bellman-Ford kernel. CI turns the two
// ns/op lines into BENCH_cost.json and gates the dense/seminaive ratio
// against the committed baseline (a >20% ns/op regression fails).
func BenchmarkCost(b *testing.B) {
	rel := relation.FromGraph(benchGrid)
	srcs := []graph.NodeID{0, 2080}
	b.Run("seminaive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := tc.ShortestFrom(rel, srcs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := tc.DenseCostFrom(rel, srcs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServing runs the concurrent query-serving experiment: an
// in-process tcserver driven by the parallel load generator, cold leg
// cache versus a warm replay. The warm/cold QPS ratio and the warm hit
// rate are the serving-layer health metrics the CI perf artifact
// (BENCH_serving.json) tracks across PRs.
func BenchmarkServing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Serving(30, 42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("serving", r.Format())
		var coldQPS, warmQPS, warmHit float64
		for _, p := range r.Points {
			if p.Errors > 0 || p.Mismatches > 0 {
				b.Fatalf("serving pass %s/%s had %d errors, %d mismatches",
					p.Engine, p.Pass, p.Errors, p.Mismatches)
			}
			if p.Engine != "dijkstra" {
				continue
			}
			switch p.Pass {
			case "cold":
				coldQPS = p.QPS
			case "warm":
				warmQPS = p.QPS
				warmHit = p.HitRate
			}
		}
		b.ReportMetric(coldQPS, "coldQPS")
		b.ReportMetric(warmQPS, "warmQPS")
		b.ReportMetric(100*warmHit, "warmHit%")
	}
}

// BenchmarkDijkstra times one single-source search.
func BenchmarkDijkstra(b *testing.B) {
	nodes := benchGraph.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGraph.ShortestPaths(nodes[i%len(nodes)])
	}
}

// BenchmarkCenterFragment times the center-based algorithm.
func BenchmarkCenterFragment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := center.Fragment(benchGraph, center.Options{NumFragments: 4, Distributed: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBEAFragment times the bond-energy pipeline (reorder + split)
// with a bounded number of starting columns.
func BenchmarkBEAFragment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bea.Fragment(benchGraph, bea.Options{Threshold: 3, Starts: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBEAReorderAllStarts times the full all-starts reordering the
// paper prescribes, on a 100-node matrix.
func BenchmarkBEAReorderAllStarts(b *testing.B) {
	mx := bea.BuildMatrix(benchGraph)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mx.Reorder(0)
	}
}

// BenchmarkLinearFragment times the linear sweep.
func BenchmarkLinearFragment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := linear.Fragment(benchGraph, linear.Options{NumFragments: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStore caches a deployed store for the query benchmarks.
var benchStore = func() *dsa.Store {
	res, err := linear.Fragment(benchGraph, linear.Options{NumFragments: 4})
	if err != nil {
		panic(err)
	}
	st, err := dsa.Build(res.Fragmentation, dsa.Options{})
	if err != nil {
		panic(err)
	}
	return st
}()

// BenchmarkBuildStore times complementary-information preprocessing —
// the paper's acknowledged overhead.
func BenchmarkBuildStore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dsa.Build(benchStore.Fragmentation(), dsa.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDSAQuerySequential times sequential disconnection-set
// queries.
func BenchmarkDSAQuerySequential(b *testing.B) {
	nodes := benchGraph.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := nodes[i%len(nodes)]
		dst := nodes[(i*37+13)%len(nodes)]
		if _, err := benchStore.Query(src, dst, dsa.EngineDijkstra); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDSAQueryParallel times the goroutine-per-site executor on
// the same workload.
func BenchmarkDSAQueryParallel(b *testing.B) {
	nodes := benchGraph.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := nodes[i%len(nodes)]
		dst := nodes[(i*37+13)%len(nodes)]
		if _, err := benchStore.QueryParallel(src, dst, dsa.EngineDijkstra); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedQuery times the full message-passing simulation.
func BenchmarkSimulatedQuery(b *testing.B) {
	cl, err := sim.New(benchStore, sim.DefaultCostModel())
	if err != nil {
		b.Fatal(err)
	}
	nodes := benchGraph.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := nodes[i%len(nodes)]
		dst := nodes[(i*37+13)%len(nodes)]
		if _, err := cl.Run(src, dst, dsa.EngineDijkstra); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFragmentationMeasure times the characteristics computation.
func BenchmarkFragmentationMeasure(b *testing.B) {
	fr := benchStore.Fragmentation()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fragment.Measure(fr)
	}
}
