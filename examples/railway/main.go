// Railway: the paper's §2.1 motivating scenario — a European railway
// network naturally fragmented by country, a shortest-connection query
// from Amsterdam to Milan answered by per-country subqueries running in
// parallel, and the "Holland property": a Dutch domestic query is
// answered by the Dutch railway computer alone, even when the best
// route dips across the border.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/fragment"
	"repro/internal/graph"
	"repro/pkg/tcq"
)

// Station IDs. Each country owns a block of IDs.
const (
	// Holland
	Amsterdam = iota
	Utrecht
	Rotterdam
	Eindhoven
	Venlo      // border: Holland/Germany
	Maastricht // border: Holland/Germany (southern crossing)
	// Germany
	Cologne
	Frankfurt
	Stuttgart
	Munich
	Basel     // border: Germany/Italy (standing in for the Swiss transit)
	Innsbruck // border: Germany/Italy (Brenner route)
	// Italy
	Verona
	Milan
	Bologna
)

var names = map[graph.NodeID]string{
	Amsterdam: "Amsterdam", Utrecht: "Utrecht", Rotterdam: "Rotterdam",
	Eindhoven: "Eindhoven", Venlo: "Venlo", Maastricht: "Maastricht",
	Cologne: "Cologne", Frankfurt: "Frankfurt", Stuttgart: "Stuttgart",
	Munich: "Munich", Basel: "Basel", Innsbruck: "Innsbruck",
	Verona: "Verona", Milan: "Milan", Bologna: "Bologna",
}

// track declares a symmetric connection with a travel time in minutes.
type track struct {
	a, b graph.NodeID
	min  float64
}

func main() {
	holland := []track{
		{Amsterdam, Utrecht, 27},
		{Amsterdam, Rotterdam, 41},
		{Utrecht, Eindhoven, 47},
		{Rotterdam, Eindhoven, 70},
		{Eindhoven, Venlo, 35},
		{Eindhoven, Maastricht, 62},
		{Utrecht, Rotterdam, 38},
	}
	germany := []track{
		{Venlo, Cologne, 57},
		{Maastricht, Cologne, 65}, // via Aachen
		{Cologne, Frankfurt, 64},
		{Frankfurt, Stuttgart, 78},
		{Stuttgart, Munich, 134},
		{Frankfurt, Munich, 193},
		{Stuttgart, Basel, 156},
		{Munich, Innsbruck, 103},
	}
	italy := []track{
		{Basel, Milan, 247}, // Gotthard transit
		{Innsbruck, Verona, 210},
		{Verona, Milan, 72},
		{Verona, Bologna, 52},
		{Milan, Bologna, 62},
	}

	// Build the network and the semantic fragmentation by country. A
	// cross-border track belongs to the country block that lists it, so
	// border stations (Venlo, Maastricht, Basel, Innsbruck) end up in
	// two fragments — they are the disconnection sets.
	g := graph.New()
	var sets [][]graph.Edge
	for _, country := range [][]track{holland, germany, italy} {
		var edges []graph.Edge
		for _, t := range country {
			e := graph.Edge{From: t.a, To: t.b, Weight: t.min}
			g.AddBoth(e)
			edges = append(edges, e, e.Reverse())
		}
		sets = append(sets, edges)
	}
	fr, err := fragment.New(g, sets)
	if err != nil {
		log.Fatal(err)
	}
	countries := []string{"Holland", "Germany", "Italy"}
	for p, ds := range fr.DisconnectionSets() {
		fmt.Printf("DS(%s, %s) = %s\n", countries[p.I], countries[p.J], stationNames(ds))
	}
	if !fr.FragmentationGraph().IsLooselyConnected() {
		log.Fatal("the country chain should be loosely connected")
	}

	client, err := tcq.Build(fr, tcq.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	// The headline query: Amsterdam → Milan. Three subqueries — one per
	// country — run in parallel; the final joins assemble the answer.
	// The planner picks the engine (per-entry Dijkstra at this scale).
	res, err := client.Query(ctx, tcq.Request{
		Sources: []int{Amsterdam}, Targets: []int{Milan}, Mode: tcq.ModeCost,
	})
	if err != nil {
		log.Fatal(err)
	}
	ans := res.Answers[0]
	fmt.Printf("\nAmsterdam -> Milan: %.0f minutes via %v (engine: %s)\n",
		ans.Cost, chainNames(ans.BestChain, countries), res.Explain.Engine)
	fmt.Printf("sites involved: %d, assembly joins: %d, largest operand: %d tuples\n",
		ans.Sites, ans.AssemblyJoins, ans.MaxOperand)
	if want := g.Distance(Amsterdam, Milan); want != ans.Cost {
		log.Fatalf("disconnection set approach disagrees with global search: %v vs %v", ans.Cost, want)
	}

	// The passenger wants the itinerary, not just the fare: reconstruct
	// the actual station sequence from the per-site predecessor trees
	// and the complementary path segments.
	_, route, err := client.QueryPath(ctx, Amsterdam, Milan)
	if err != nil {
		log.Fatal(err)
	}
	if err := route.Validate(g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("itinerary: %s\n", stationNames(route.Nodes))

	// The Holland property: Eindhoven → Maastricht. The direct domestic
	// track takes 62 minutes; the detour over German rails (Venlo →
	// Cologne → Maastricht) would take 35+57+65 = 157, so here the
	// domestic route wins — but the *decision* requires knowing the
	// German alternative, which the Dutch site has precomputed in its
	// complementary information. One site answers, correctly.
	domRes, err := client.Query(ctx, tcq.Request{
		Sources: []int{Eindhoven}, Targets: []int{Maastricht}, Mode: tcq.ModeCost,
	})
	if err != nil {
		log.Fatal(err)
	}
	dom := domRes.Answers[0]
	fmt.Printf("\nEindhoven -> Maastricht: %.0f minutes, same-fragment plan: %v, sites used: %d\n",
		dom.Cost, dom.SameFragment, dom.Sites)

	// And a case where the foreign detour genuinely wins: engineering
	// works slow the domestic Eindhoven–Maastricht track to 200
	// minutes. The timetable change is one atomic Batch on the live
	// deployment — replace both directions of the track in a single
	// transaction (no rebuild-from-scratch, no half-updated network
	// ever visible). A snapshot pinned before the works keeps
	// answering the old timetable, the paper's consistency story for
	// long-running queries.
	preWorks := client.Snapshot()
	var works tcq.Batch
	works.Delete(0, Eindhoven, Maastricht, 62).Delete(0, Maastricht, Eindhoven, 62).
		Insert(0, Eindhoven, Maastricht, 200).Insert(0, Maastricht, Eindhoven, 200)
	applied, err := client.Apply(ctx, &works)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nengineering works applied as one %d-op batch: epoch %d, %d site(s) rebuilt, %d shared\n",
		works.Len(), applied.Epoch, len(applied.Stats.SitesRebuilt), applied.Stats.SitesShared)
	slowRes, err := client.Query(ctx, tcq.Request{
		Sources: []int{Eindhoven}, Targets: []int{Maastricht}, Mode: tcq.ModeCost,
	})
	if err != nil {
		log.Fatal(err)
	}
	slow := slowRes.Answers[0]
	gNow := client.Store().Fragmentation().Base()
	fmt.Printf("with works on the domestic track: %.0f minutes (global says %.0f), sites used: %d\n",
		slow.Cost, gNow.Distance(Eindhoven, Maastricht), slow.Sites)
	fmt.Println("the route crosses Germany, yet only the Dutch site computed")
	old, err := preWorks.Cost(ctx, Eindhoven, Maastricht)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a passenger still on the pre-works snapshot (epoch %d) is quoted: %.0f minutes\n",
		preWorks.Epoch(), old)
}

// stationNames renders node IDs as station names.
func stationNames(ids []graph.NodeID) string {
	s := ""
	for i, id := range ids {
		if i > 0 {
			s += ", "
		}
		s += names[id]
	}
	return s
}

// chainNames renders a fragment chain as country names.
func chainNames(chain []int, countries []string) []string {
	out := make([]string, len(chain))
	for i, c := range chain {
		out[i] = countries[c]
	}
	return out
}
