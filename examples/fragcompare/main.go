// Fragcompare: run all three ICDE'93 fragmentation algorithms on the
// same transportation graph, print a paper-style characteristics table,
// deploy each fragmentation, and measure what the fragmentation choice
// does to actual query processing — disconnection set sizes drive the
// complementary-information volume and the assembly operand sizes, and
// fragment balance drives the parallel critical path.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/fragment/bea"
	"repro/internal/fragment/center"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	g, err := gen.Transportation(gen.TransportConfig{
		Clusters: 4,
		Cluster:  gen.Defaults(25, 11),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %v (4 clusters × 25 nodes)\n\n", g)

	type contender struct {
		name string
		fr   *fragment.Fragmentation
	}
	var contenders []contender

	cfr, err := center.Fragment(g, center.Options{NumFragments: 4, Distributed: true})
	if err != nil {
		log.Fatal(err)
	}
	contenders = append(contenders, contender{"center-based", cfr})

	bfr, err := bea.Fragment(g, bea.Options{Threshold: 3})
	if err != nil {
		log.Fatal(err)
	}
	contenders = append(contenders, contender{"bond-energy", bfr})

	lres, err := linear.Fragment(g, linear.Options{NumFragments: 4})
	if err != nil {
		log.Fatal(err)
	}
	contenders = append(contenders, contender{"linear", lres.Fragmentation})

	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tF\tDS\tAF\tADS\tfrags\tcycles\tcomp facts\tavg query\tmax operand")
	rng := rand.New(rand.NewSource(3))
	nodes := g.Nodes()
	queries := make([][2]graph.NodeID, 30)
	for i := range queries {
		queries[i] = [2]graph.NodeID{
			nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))],
		}
	}
	for _, c := range contenders {
		ch := fragment.Measure(c.fr)
		store, err := dsa.Build(c.fr, dsa.Options{MaxChains: 64})
		if err != nil {
			log.Fatal(err)
		}
		var total time.Duration
		maxOperand := 0
		for _, q := range queries {
			res, err := store.QueryParallel(q[0], q[1], dsa.EngineDijkstra)
			if err != nil {
				log.Fatal(err)
			}
			total += res.Elapsed
			if res.Assembly.MaxOperand > maxOperand {
				maxOperand = res.Assembly.MaxOperand
			}
			// Every fragmentation must give the same (exact) answer when
			// loosely connected; check against the global search.
			if ch.LooselyConnected && res.Reachable {
				if want := g.Distance(q[0], q[1]); math.Abs(want-res.Cost) > 1e-9 {
					log.Fatalf("%s: %v vs global %v", c.name, res.Cost, want)
				}
			}
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.2f\t%d\t%d\t%d\t%v\t%d\n",
			c.name, ch.F, ch.DS, ch.AF, ch.ADS, ch.NumFragments, ch.Cycles,
			store.Preprocessing().PairsStored,
			(total / time.Duration(len(queries))).Round(time.Microsecond),
			maxOperand)
	}
	tw.Flush()
	fmt.Println("\nsmall DS ⇒ few complementary facts and small assembly operands;")
	fmt.Println("balanced F ⇒ even per-site work; acyclic G' ⇒ single-chain plans.")
}
