// Fragcompare: run all three ICDE'93 fragmentation algorithms on the
// same transportation graph, print a paper-style characteristics table,
// deploy each fragmentation, and measure what the fragmentation choice
// does to actual query processing — disconnection set sizes drive the
// complementary-information volume and the assembly operand sizes, and
// fragment balance drives the parallel critical path.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/fragment"
	"repro/internal/fragment/bea"
	"repro/internal/fragment/center"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/pkg/tcq"
)

func main() {
	g, err := gen.Transportation(gen.TransportConfig{
		Clusters: 4,
		Cluster:  gen.Defaults(25, 11),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %v (4 clusters × 25 nodes)\n\n", g)

	type contender struct {
		name string
		fr   *fragment.Fragmentation
	}
	var contenders []contender

	cfr, err := center.Fragment(g, center.Options{NumFragments: 4, Distributed: true})
	if err != nil {
		log.Fatal(err)
	}
	contenders = append(contenders, contender{"center-based", cfr})

	bfr, err := bea.Fragment(g, bea.Options{Threshold: 3})
	if err != nil {
		log.Fatal(err)
	}
	contenders = append(contenders, contender{"bond-energy", bfr})

	lres, err := linear.Fragment(g, linear.Options{NumFragments: 4})
	if err != nil {
		log.Fatal(err)
	}
	contenders = append(contenders, contender{"linear", lres.Fragmentation})

	tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tF\tDS\tAF\tADS\tfrags\tcycles\tcomp facts\tavg query\tmax operand")
	rng := rand.New(rand.NewSource(3))
	nodes := g.Nodes()
	queries := make([][2]graph.NodeID, 30)
	for i := range queries {
		queries[i] = [2]graph.NodeID{
			nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))],
		}
	}
	ctx := context.Background()
	for _, c := range contenders {
		ch := fragment.Measure(c.fr)
		client, err := tcq.Build(c.fr, tcq.BuildOptions{MaxChains: 64})
		if err != nil {
			log.Fatal(err)
		}
		var total time.Duration
		maxOperand := 0
		for _, q := range queries {
			res, err := client.Query(ctx, tcq.Request{
				Sources: []int{int(q[0])}, Targets: []int{int(q[1])}, Mode: tcq.ModeCost,
			})
			if err != nil {
				log.Fatal(err)
			}
			ans := res.Answers[0]
			total += ans.Elapsed
			if ans.MaxOperand > maxOperand {
				maxOperand = ans.MaxOperand
			}
			// Every fragmentation must give the same (exact) answer when
			// loosely connected; check against the global search.
			if ch.LooselyConnected && ans.Reachable {
				if want := g.Distance(q[0], q[1]); math.Abs(want-ans.Cost) > 1e-9 {
					log.Fatalf("%s: %v vs global %v", c.name, ans.Cost, want)
				}
			}
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.2f\t%d\t%d\t%d\t%v\t%d\n",
			c.name, ch.F, ch.DS, ch.AF, ch.ADS, ch.NumFragments, ch.Cycles,
			client.Preprocessing().PairsStored,
			(total / time.Duration(len(queries))).Round(time.Microsecond),
			maxOperand)
		client.Close()
	}
	tw.Flush()
	fmt.Println("\nsmall DS ⇒ few complementary facts and small assembly operands;")
	fmt.Println("balanced F ⇒ even per-site work; acyclic G' ⇒ single-chain plans.")
}
