// Quickstart: generate a transportation graph, fragment it, deploy the
// disconnection set approach, and answer one shortest-path query — the
// whole pipeline of the ICDE'93 paper in ~60 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/fragment/bea"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	// 1. Generate a transportation graph (§4.1): 4 dense clusters of 20
	// nodes, loosely interconnected, coordinates on a plane, edge costs
	// = Euclidean distances.
	g, err := gen.Transportation(gen.TransportConfig{
		Clusters: 4,
		Cluster:  gen.Defaults(20, 7),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %v, diameter %d\n", g, g.Diameter())

	// 2. Fragment it with the bond-energy algorithm (§3.2), which aims
	// for small disconnection sets.
	fr, err := bea.Fragment(g, bea.Options{Threshold: 3})
	if err != nil {
		log.Fatal(err)
	}
	c := fragment.Measure(fr)
	fmt.Printf("fragmentation: %v\n", c)

	// 3. Deploy: precompute the complementary information (global
	// shortest paths between disconnection-set nodes, stored at both
	// adjacent sites).
	store, err := dsa.Build(fr, dsa.Options{})
	if err != nil {
		log.Fatal(err)
	}
	prep := store.Preprocessing()
	fmt.Printf("preprocessing: %d global searches, %d complementary facts\n",
		prep.DijkstraRuns, prep.PairsStored)

	// 4. Query: shortest path between interior nodes (in exactly one
	// fragment) of the first and last fragments, executed with one
	// goroutine per site and assembled with small joins.
	interior := func(fragID int) graph.NodeID {
		for _, id := range fr.Fragment(fragID).Nodes() {
			if len(fr.FragmentsOf(id)) == 1 {
				return id
			}
		}
		return fr.Fragment(fragID).Nodes()[0]
	}
	src := interior(0)
	dst := interior(fr.NumFragments() - 1)
	plan, err := store.NewPlan(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d chain(s) over sites %v\n", len(plan.Chains), plan.SitesInvolved())

	res, err := store.QueryParallel(src, dst, dsa.EngineDijkstra)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Reachable {
		fmt.Printf("%d and %d are not connected\n", src, dst)
		return
	}
	fmt.Printf("shortest path %d -> %d costs %.2f via fragment chain %v\n",
		src, dst, res.Cost, res.BestChain)
	fmt.Printf("assembly: %d joins, largest operand %d tuples (the paper's \"very small relations\")\n",
		res.Assembly.Joins, res.Assembly.MaxOperand)

	// 5. Sanity: the answer equals a global single-machine search.
	fmt.Printf("global Dijkstra agrees: %v\n", g.Distance(src, dst) == res.Cost)
}
