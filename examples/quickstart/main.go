// Quickstart: generate a transportation graph, fragment it, deploy the
// disconnection set approach through the public tcq facade, and answer
// one shortest-path query — the whole pipeline of the ICDE'93 paper in
// ~60 lines.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/fragment"
	"repro/internal/fragment/bea"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/pkg/tcq"
)

func main() {
	// 1. Generate a transportation graph (§4.1): 4 dense clusters of 20
	// nodes, loosely interconnected, coordinates on a plane, edge costs
	// = Euclidean distances.
	g, err := gen.Transportation(gen.TransportConfig{
		Clusters: 4,
		Cluster:  gen.Defaults(20, 7),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %v, diameter %d\n", g, g.Diameter())

	// 2. Fragment it with the bond-energy algorithm (§3.2), which aims
	// for small disconnection sets.
	fr, err := bea.Fragment(g, bea.Options{Threshold: 3})
	if err != nil {
		log.Fatal(err)
	}
	c := fragment.Measure(fr)
	fmt.Printf("fragmentation: %v\n", c)

	// 3. Deploy through the facade: precompute the complementary
	// information (global shortest paths between disconnection-set
	// nodes, stored at both adjacent sites) and open a client.
	client, err := tcq.Build(fr, tcq.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	prep := client.Preprocessing()
	fmt.Printf("preprocessing: %d global searches, %d complementary facts\n",
		prep.DijkstraRuns, prep.PairsStored)

	// 4. Query: shortest path between interior nodes (in exactly one
	// fragment) of the first and last fragments, executed with one
	// goroutine per site and assembled with small joins.
	interior := func(fragID int) graph.NodeID {
		for _, id := range fr.Fragment(fragID).Nodes() {
			if len(fr.FragmentsOf(id)) == 1 {
				return id
			}
		}
		return fr.Fragment(fragID).Nodes()[0]
	}
	src := interior(0)
	dst := interior(fr.NumFragments() - 1)
	req := tcq.Request{Sources: []int{int(src)}, Targets: []int{int(dst)}, Mode: tcq.ModeCost}
	explain, err := client.Plan(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %s — %s\n", explain.Canonical(), explain.Reason)

	res, err := client.Query(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	ans := res.Answers[0]
	if !ans.Reachable {
		fmt.Printf("%d and %d are not connected\n", src, dst)
		return
	}
	fmt.Printf("shortest path %d -> %d costs %.2f via fragment chain %v (%d sites, %d chain(s))\n",
		src, dst, ans.Cost, ans.BestChain, ans.Sites, ans.ChainsConsidered)
	fmt.Printf("assembly: %d joins, largest operand %d tuples (the paper's \"very small relations\")\n",
		ans.AssemblyJoins, ans.MaxOperand)

	// 5. Sanity: the answer equals a global single-machine search.
	fmt.Printf("global Dijkstra agrees: %v\n", g.Distance(src, dst) == ans.Cost)
}
