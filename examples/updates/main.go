// Updates: the paper's acknowledged cost (§2.1) — "the disadvantage of
// the disconnection set approach is mainly due to the pre-processing
// required for building the complementary information and to the
// careful treatment of updates. As long as updates are not too
// frequent, the pre-processing costs may be amortized over many
// queries."
//
// This example deploys a fragmented network, measures what an edge
// update costs (complementary-information rebuild), shows that queries
// stay exact across updates, and prints the amortisation arithmetic:
// how many queries one update's cost is worth.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/dsa"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	g, err := gen.Transportation(gen.TransportConfig{
		Clusters: 4,
		Cluster:  gen.Defaults(30, 21),
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := linear.Fragment(g, linear.Options{NumFragments: 4})
	if err != nil {
		log.Fatal(err)
	}
	store, err := dsa.Build(res.Fragmentation, dsa.Options{})
	if err != nil {
		log.Fatal(err)
	}
	prep := store.Preprocessing()
	fmt.Printf("deployed %d sites over %v\n", len(store.Sites()), g)
	fmt.Printf("initial preprocessing: %d global searches, %d complementary facts\n\n",
		prep.DijkstraRuns, prep.PairsStored)

	nodes := g.Nodes()
	src, dst := nodes[0], nodes[len(nodes)-1]

	// Baseline query timing.
	t0 := time.Now()
	const queryRounds = 50
	for i := 0; i < queryRounds; i++ {
		if _, err := store.Query(src, dst, dsa.EngineDijkstra); err != nil {
			log.Fatal(err)
		}
	}
	perQuery := time.Since(t0) / queryRounds
	fmt.Printf("steady-state query: %v\n", perQuery.Round(time.Microsecond))

	// An update: add a new express connection inside fragment 0.
	f0 := store.Fragmentation().Fragment(0).Nodes()
	express := graph.Edge{From: f0[0], To: f0[len(f0)-1], Weight: 0.5}
	t0 = time.Now()
	ustats, err := store.InsertEdge(0, express)
	if err != nil {
		log.Fatal(err)
	}
	updateCost := time.Since(t0)
	fmt.Printf("insert %d→%d: rebuilt %d disconnection sets with %d global searches in %v\n",
		express.From, express.To, ustats.RecomputedSets, ustats.DijkstraRuns,
		updateCost.Round(time.Microsecond))
	fmt.Printf("one update costs as much as ≈ %d queries\n\n",
		int(updateCost/perQuery)+1)

	// Queries remain exact after the update.
	after, err := store.Query(src, dst, dsa.EngineDijkstra)
	if err != nil {
		log.Fatal(err)
	}
	want := store.Fragmentation().Base().Distance(src, dst)
	fmt.Printf("query after update: cost %.2f (global search agrees: %v)\n",
		after.Cost, approxEqual(after.Cost, want))

	// And a deletion: remove the express edge again.
	if _, err := store.DeleteEdge(0, express); err != nil {
		log.Fatal(err)
	}
	restored, err := store.Query(src, dst, dsa.EngineDijkstra)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query after delete: cost %.2f (back to the original: %v)\n",
		restored.Cost, approxEqual(restored.Cost, g.Distance(src, dst)))
	fmt.Println("\nconclusion: batch updates, amortise preprocessing over query bursts —")
	fmt.Println("exactly the paper's operating regime for the disconnection set approach.")
}

// approxEqual compares costs up to float summation noise.
func approxEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}
