// Updates: the paper's acknowledged cost (§2.1) — "the disadvantage of
// the disconnection set approach is mainly due to the pre-processing
// required for building the complementary information and to the
// careful treatment of updates. As long as updates are not too
// frequent, the pre-processing costs may be amortized over many
// queries."
//
// This example exercises the transactional mutation API: a Batch of
// typed ops applied atomically through a Dataset, copy-on-write
// Snapshots that keep answering at their own epoch while writers move
// the dataset on, the incremental per-fragment rebuild (untouched
// sites are structurally shared), and the amortisation arithmetic —
// how many queries one update's cost is worth.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/pkg/tcq"
)

func main() {
	g, err := gen.Transportation(gen.TransportConfig{
		Clusters: 4,
		Cluster:  gen.Defaults(30, 21),
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := linear.Fragment(g, linear.Options{NumFragments: 4})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := tcq.NewDataset(res.Fragmentation, tcq.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	client, err := ds.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()
	prep := client.Preprocessing()
	fmt.Printf("deployed %d sites over %v\n", client.Sites(), g)
	fmt.Printf("initial preprocessing: %d global searches, %d complementary facts\n\n",
		prep.DijkstraRuns, prep.PairsStored)

	nodes := g.Nodes()
	src, dst := int(nodes[0]), int(nodes[len(nodes)-1])
	costReq := tcq.Request{Sources: []int{src}, Targets: []int{dst}, Mode: tcq.ModeCost}

	// Baseline query timing.
	t0 := time.Now()
	const queryRounds = 50
	for i := 0; i < queryRounds; i++ {
		if _, err := client.Query(ctx, costReq); err != nil {
			log.Fatal(err)
		}
	}
	perQuery := time.Since(t0) / queryRounds
	fmt.Printf("steady-state query: %v\n", perQuery.Round(time.Microsecond))

	// Pin a snapshot BEFORE updating: it will keep answering the
	// pre-update network no matter what lands afterwards.
	before, err := client.Snapshot().Cost(ctx, src, dst)
	if err != nil {
		log.Fatal(err)
	}
	pinned := client.Snapshot()

	// One atomic batch: a new express connection inside fragment 0 plus
	// a second local link — either both land in one epoch, or neither.
	f0 := res.Fragmentation.Fragment(0).Nodes()
	exFrom, exTo, exWeight := int(f0[0]), int(f0[len(f0)-1]), 0.5
	var b tcq.Batch
	b.Insert(0, exFrom, exTo, exWeight).Insert(0, exTo, exFrom, exWeight)
	t0 = time.Now()
	applied, err := ds.Apply(ctx, &b)
	if err != nil {
		log.Fatal(err)
	}
	updateCost := time.Since(t0)
	fmt.Printf("batch of %d ops -> epoch %d: %d global searches, %d site(s) rebuilt, %d shared, in %v\n",
		b.Len(), applied.Epoch, applied.Stats.DijkstraRuns,
		len(applied.Stats.SitesRebuilt), applied.Stats.SitesShared,
		updateCost.Round(time.Microsecond))
	fmt.Printf("one batch costs as much as ≈ %d queries\n\n",
		int(updateCost/perQuery)+1)

	// Queries on the dataset see the new epoch and remain exact…
	after, err := client.Cost(ctx, src, dst)
	if err != nil {
		log.Fatal(err)
	}
	want := client.Store().Fragmentation().Base().Distance(nodes[0], nodes[len(nodes)-1])
	fmt.Printf("query after batch: cost %.2f (global search agrees: %v)\n",
		after, approxEqual(after, want))
	// …while the pinned snapshot still answers the pre-batch network.
	stillBefore, err := pinned.Cost(ctx, src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned epoch-%d snapshot still answers: %.2f (pre-batch: %v)\n",
		pinned.Epoch(), stillBefore, approxEqual(stillBefore, before))

	// Roll the express connection back — a batch is its own inverse.
	var undo tcq.Batch
	undo.Delete(0, exFrom, exTo, exWeight).Delete(0, exTo, exFrom, exWeight)
	if _, err := ds.Apply(ctx, &undo); err != nil {
		log.Fatal(err)
	}
	restored, err := client.Cost(ctx, src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query after rollback batch: cost %.2f (back to the original: %v)\n",
		restored, approxEqual(restored, g.Distance(nodes[0], nodes[len(nodes)-1])))
	fmt.Println("\nconclusion: batch updates, amortise preprocessing over query bursts —")
	fmt.Println("exactly the paper's operating regime for the disconnection set approach.")
}

// approxEqual compares costs up to float summation noise.
func approxEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}
