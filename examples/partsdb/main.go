// Partsdb: the bill-of-material scenario of the paper's introduction —
// "in a database storing information about parts, one can express
// bill-of-material questions". A part–subpart relation is a directed
// graph; "is part X used in assembly Y?" is a reachability query and
// "what is the cheapest way to source subassembly Z?" a cost query.
// The example exercises the relational substrate directly (the paper
// frames transitive closure in the relational algebra) and then scales
// the same questions to a fragmented deployment: each supplier site
// stores the composition of its own product line.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/fragment"
	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/tc"
	"repro/pkg/tcq"
)

// Parts. Supplier A builds vehicles, supplier B drivetrains, supplier C
// electronics; subassembly boundaries (gearbox, controller) are the
// shared parts — the disconnection sets of the parts world.
const (
	// Supplier A: vehicles
	Truck = iota
	Van
	Chassis
	Cabin
	Gearbox // shared with supplier B
	// Supplier B: drivetrains
	Clutch
	Shaft
	Bearing
	Controller // shared with supplier C
	// Supplier C: electronics
	Sensor
	Chip
	Harness
)

var names = map[graph.NodeID]string{
	Truck: "truck", Van: "van", Chassis: "chassis", Cabin: "cabin",
	Gearbox: "gearbox", Clutch: "clutch", Shaft: "shaft",
	Bearing: "bearing", Controller: "controller", Sensor: "sensor",
	Chip: "chip", Harness: "harness",
}

// uses declares that assembly a contains part b, with the cost of the
// integration step.
type uses struct {
	a, b graph.NodeID
	cost float64
}

func main() {
	supplierA := []uses{
		{Truck, Chassis, 40}, {Truck, Cabin, 25}, {Truck, Gearbox, 60},
		{Van, Chassis, 35}, {Van, Gearbox, 55}, {Cabin, Harness, 10},
	}
	supplierB := []uses{
		{Gearbox, Clutch, 20}, {Gearbox, Shaft, 15},
		{Shaft, Bearing, 5}, {Gearbox, Controller, 30},
	}
	supplierC := []uses{
		{Controller, Sensor, 8}, {Controller, Chip, 12},
		{Sensor, Chip, 4}, {Controller, Harness, 6},
	}

	// --- Centralized, purely relational view -------------------------
	g := graph.New()
	var sets [][]graph.Edge
	for _, supplier := range [][]uses{supplierA, supplierB, supplierC} {
		var edges []graph.Edge
		for _, u := range supplier {
			e := graph.Edge{From: u.a, To: u.b, Weight: u.cost}
			g.AddEdge(e)
			edges = append(edges, e)
		}
		sets = append(sets, edges)
	}
	rel := relation.FromGraph(g)

	// "Which parts does a truck contain, transitively?"
	reach, stats, err := tc.ReachableFrom(rel, []graph.NodeID{Truck})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("truck transitively contains %d parts (%d fixpoint iterations):\n  ",
		reach.Len(), stats.Iterations)
	for _, t := range reach.Sort().Tuples() {
		fmt.Printf("%s ", names[graph.NodeID(t[1].(int64))])
	}
	fmt.Println()

	// "Is a chip used in a van?" — a boolean connection query.
	vanParts, _, err := tc.ReachableFrom(rel, []graph.NodeID{Van})
	if err != nil {
		log.Fatal(err)
	}
	usesChip := vanParts.Contains(relation.Tuple{int64(Van), int64(Chip)})
	fmt.Printf("van uses chip: %v\n", usesChip)

	// "What is the cheapest integration path from truck to chip?" —
	// the weighted closure.
	costs, _, err := tc.ShortestFrom(rel, []graph.NodeID{Truck})
	if err != nil {
		log.Fatal(err)
	}
	toChip, err := costs.SelectEq("dst", int64(Chip))
	if err != nil {
		log.Fatal(err)
	}
	if c, ok, err := toChip.MinValue("cost"); err == nil && ok {
		fmt.Printf("cheapest integration path truck -> chip: %.0f\n", c)
	}

	// --- Fragmented deployment: one site per supplier ----------------
	fr, err := fragment.New(g, sets)
	if err != nil {
		log.Fatal(err)
	}
	for p, ds := range fr.DisconnectionSets() {
		fmt.Printf("suppliers %d and %d share: %s\n", p.I, p.J, names[ds[0]])
	}
	client, err := tcq.Build(fr, tcq.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	// The same question, answered by the three supplier sites in
	// parallel: supplier A resolves truck -> gearbox, supplier B
	// gearbox -> controller, supplier C controller -> chip. The request
	// forces the paper's relational semi-naive engine — the planner
	// would pick Dijkstra at this size.
	res, err := client.Query(ctx, tcq.Request{
		Sources: []int{Truck}, Targets: []int{Chip},
		Mode: tcq.ModeCost, Engine: tcq.EngineSemiNaive,
	})
	if err != nil {
		log.Fatal(err)
	}
	ans := res.Answers[0]
	fmt.Printf("fragmented: truck -> chip costs %.0f across supplier sites %v\n",
		ans.Cost, ans.BestChain)
	ok, err := client.Connected(ctx, Van, Bearing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fragmented: van uses bearing: %v\n", ok)

	// Direction matters in a parts hierarchy: nothing "contains" a
	// truck.
	rev, err := client.Connected(ctx, Chip, Truck)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip contains truck (must be false): %v\n", rev)
}
