// Command tcbench regenerates every table and measured claim of the
// ICDE'93 paper (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	tcbench                      # everything
//	tcbench -table 2             # one table
//	tcbench -experiment speedup  # one performance experiment
//	tcbench -trials 20 -seed 7   # bigger batches
//	tcbench -experiment cost -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
)

func main() {
	var (
		table      = flag.String("table", "", "table to reproduce: 1, 2, 3 (empty = all)")
		experiment = flag.String("experiment", "", "experiment: speedup, iterations, fig8, phe, impact, amortize, kconn, ablation, engines, cost, serving, updates, cluster, coldstart (empty = all)")
		jsonPath   = flag.String("json", "", "write the experiment result as JSON to this file (updates, cluster and coldstart experiments)")
		edges      = flag.Int("edges", 1_200_000, "directed-edge target for the coldstart experiment")
		trials     = flag.Int("trials", 10, "random graphs per table")
		queries    = flag.Int("queries", 20, "queries per performance point")
		sources    = flag.Int("sources", 2, "entry-set size for the engines and cost experiments")
		seed       = flag.Int64("seed", 42, "base random seed")
		tablesOnly = flag.Bool("tables-only", false, "skip the performance experiments")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		cpuProfileFile = f
	}
	memProfilePath = *memProfile
	defer flushProfiles()

	runTables := *experiment == ""
	runExps := *table == "" && !*tablesOnly

	if runTables {
		type tableFn func(int, int64) (*bench.Table, error)
		all := []struct {
			id string
			fn tableFn
		}{
			{"1", bench.Table1},
			{"2", bench.Table2},
			{"3", bench.Table3},
		}
		for _, t := range all {
			if *table != "" && *table != t.id {
				continue
			}
			tbl, err := t.fn(*trials, *seed)
			if err != nil {
				fatal(err)
			}
			fmt.Println(tbl.Format())
		}
	}

	if runExps {
		run := func(name string, f func() (fmt.Stringer, error)) {
			if *experiment != "" && *experiment != name {
				return
			}
			out, err := f()
			if err != nil {
				fatal(fmt.Errorf("%s: %v", name, err))
			}
			fmt.Println(out)
		}
		run("speedup", func() (fmt.Stringer, error) {
			r, err := bench.Speedup(60, *queries, *seed)
			return formatter{r.Format}, err
		})
		run("iterations", func() (fmt.Stringer, error) {
			r, err := bench.Iterations(4, 25, *queries, *seed)
			return formatter{r.Format}, err
		})
		run("fig8", func() (fmt.Stringer, error) {
			r, err := bench.Fig8(*trials, *seed)
			return formatter{r.Format}, err
		})
		run("phe", func() (fmt.Stringer, error) {
			r, err := bench.PHE(*queries, *seed)
			return formatter{r.Format}, err
		})
		run("impact", func() (fmt.Stringer, error) {
			r, err := bench.Impact(5, *queries, *seed)
			return formatter{r.Format}, err
		})
		run("amortize", func() (fmt.Stringer, error) {
			r, err := bench.Amortize(*queries, *seed)
			return formatter{r.Format}, err
		})
		run("kconn", func() (fmt.Stringer, error) {
			r, err := bench.KConnCost(*seed)
			return formatter{r.Format}, err
		})
		run("engines", func() (fmt.Stringer, error) {
			r, err := bench.Engines(*sources, *seed)
			return formatter{r.Format}, err
		})
		run("cost", func() (fmt.Stringer, error) {
			r, err := bench.Cost(*sources, *seed)
			return formatter{r.Format}, err
		})
		run("serving", func() (fmt.Stringer, error) {
			r, err := bench.Serving(*queries, *seed)
			return formatter{r.Format}, err
		})
		run("updates", func() (fmt.Stringer, error) {
			r, err := bench.Updates(*queries, *seed)
			if err != nil {
				return nil, err
			}
			if *jsonPath != "" {
				if err := writeResultJSON(*jsonPath, r); err != nil {
					return nil, err
				}
			}
			return formatter{r.Format}, nil
		})
		run("cluster", func() (fmt.Stringer, error) {
			r, err := bench.Cluster(*queries, *seed)
			if err != nil {
				return nil, err
			}
			if *jsonPath != "" {
				if err := writeResultJSON(*jsonPath, r); err != nil {
					return nil, err
				}
			}
			return formatter{r.Format}, nil
		})
		// coldstart generates a million-edge road network and is only
		// run when asked for by name, never as part of "all".
		if *experiment == "coldstart" {
			r, err := bench.Coldstart(*edges, *queries, *seed)
			if err != nil {
				fatal(fmt.Errorf("coldstart: %v", err))
			}
			if *jsonPath != "" {
				if err := writeResultJSON(*jsonPath, r); err != nil {
					fatal(fmt.Errorf("coldstart: %v", err))
				}
			}
			fmt.Println(r.Format())
		}
		run("ablation", func() (fmt.Stringer, error) {
			var s string
			for _, f := range []func(int, int64) (*bench.Ablation, error){
				bench.AblationBEAThreshold,
				bench.AblationBEAMode,
				bench.AblationCenterVariant,
				bench.AblationCenterPool,
				bench.AblationLinearStartCount,
			} {
				a, err := f(*trials, *seed)
				if err != nil {
					return nil, err
				}
				s += a.Format() + "\n"
			}
			return formatter{func() string { return s }}, nil
		})
	}
}

// formatter adapts a Format method to fmt.Stringer.
type formatter struct{ f func() string }

func (f formatter) String() string { return f.f() }

// writeResultJSON persists an experiment result as a JSON artifact
// (the CI perf-trajectory files, e.g. BENCH_updates.json).
func writeResultJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// cpuProfileFile and memProfilePath hold the -cpuprofile/-memprofile
// state so flushProfiles can finalise them on both the normal and the
// fatal exit path — os.Exit skips defers, and an unflushed CPU profile
// is unreadable.
var (
	cpuProfileFile *os.File
	memProfilePath string
)

// flushProfiles stops the CPU profile and writes the heap profile, if
// requested. Safe to call more than once.
func flushProfiles() {
	if cpuProfileFile != nil {
		pprof.StopCPUProfile()
		cpuProfileFile.Close()
		cpuProfileFile = nil
	}
	if memProfilePath != "" {
		path := memProfilePath
		memProfilePath = ""
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcbench:", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle allocations so the profile shows live heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tcbench:", err)
		}
	}
}

func fatal(err error) {
	flushProfiles()
	fmt.Fprintln(os.Stderr, "tcbench:", err)
	os.Exit(1)
}
