// Command tcquery answers transitive-closure queries over a fragmented
// graph with the disconnection set approach: it builds the
// complementary information, plans the fragment chains, runs the
// per-site subqueries (in parallel with -parallel) and assembles the
// answer, reporting the paper's performance quantities along the way.
//
// Usage:
//
//	tcquery -graph graph.txt -frag frags.txt -src 3 -dst 97
//	tcquery -graph graph.txt -frag frags.txt -src 3 -dst 97 -parallel -engine seminaive
//	tcquery -graph graph.txt -frag frags.txt -src 3 -dst 97 -phe 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dsa"
	"repro/internal/fragment"
	"repro/internal/graph"
	"repro/internal/phe"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "graph file (required)")
		fragFile  = flag.String("frag", "", "fragmentation file (required)")
		src       = flag.Int("src", -1, "source node (required)")
		dst       = flag.Int("dst", -1, "target node (required)")
		engine    = flag.String("engine", "dijkstra", "local engine: dijkstra, seminaive, bitset or dense (bitset answers connectivity only)")
		parallel  = flag.Bool("parallel", false, "run per-site subqueries concurrently")
		highway   = flag.Int("phe", -1, "use parallel hierarchical evaluation with this highway fragment")
		maxChains = flag.Int("max-chains", 0, "bound chain enumeration (0 = unlimited)")
		verbose   = flag.Bool("v", false, "print the plan and per-site work")
		showPath  = flag.Bool("path", false, "reconstruct and print the actual node route")
	)
	flag.Parse()
	if *graphFile == "" || *fragFile == "" || *src < 0 || *dst < 0 {
		fatal(fmt.Errorf("-graph, -frag, -src and -dst are required"))
	}

	gf, err := os.Open(*graphFile)
	if err != nil {
		fatal(err)
	}
	g, err := graph.Read(gf)
	gf.Close()
	if err != nil {
		fatal(err)
	}
	ff, err := os.Open(*fragFile)
	if err != nil {
		fatal(err)
	}
	fr, err := fragment.Read(g, ff)
	ff.Close()
	if err != nil {
		fatal(err)
	}

	eng, err := dsa.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}

	store, err := dsa.Build(fr, dsa.Options{MaxChains: *maxChains})
	if err != nil {
		fatal(err)
	}
	prep := store.Preprocessing()
	fmt.Printf("store: %d sites, %d disconnection sets, loosely connected: %v\n",
		len(store.Sites()), prep.DisconnectionSets, store.LooselyConnected())
	fmt.Printf("preprocessing: %d global searches, %d complementary facts\n",
		prep.DijkstraRuns, prep.PairsStored)

	// The bitset engine is connectivity-only: answer the paper's
	// "Is A connected to B?" query instead of the cost query.
	if eng == dsa.EngineBitset {
		if *verbose || *showPath {
			fmt.Fprintln(os.Stderr, "tcquery: -v and -path are not supported with -engine bitset (connectivity only)")
		}
		var connected bool
		if *highway >= 0 {
			h, err := phe.New(store, *highway)
			if err != nil {
				fatal(err)
			}
			connected, err = h.Connected(graph.NodeID(*src), graph.NodeID(*dst), eng)
			if err != nil {
				fatal(err)
			}
		} else if *parallel {
			connected, err = store.ConnectedParallel(graph.NodeID(*src), graph.NodeID(*dst), eng)
			if err != nil {
				fatal(err)
			}
		} else {
			connected, err = store.Connected(graph.NodeID(*src), graph.NodeID(*dst), eng)
			if err != nil {
				fatal(err)
			}
		}
		if connected {
			fmt.Printf("%d and %d are connected\n", *src, *dst)
		} else {
			fmt.Printf("%d and %d are NOT connected\n", *src, *dst)
		}
		return
	}

	var res *dsa.Result
	switch {
	case *highway >= 0:
		h, err := phe.New(store, *highway)
		if err != nil {
			fatal(err)
		}
		res, err = h.Query(graph.NodeID(*src), graph.NodeID(*dst), eng)
		if err != nil {
			fatal(err)
		}
	case *parallel:
		res, err = store.QueryParallel(graph.NodeID(*src), graph.NodeID(*dst), eng)
		if err != nil {
			fatal(err)
		}
	default:
		res, err = store.Query(graph.NodeID(*src), graph.NodeID(*dst), eng)
		if err != nil {
			fatal(err)
		}
	}

	if !res.Reachable {
		fmt.Printf("%d and %d are NOT connected\n", *src, *dst)
	} else {
		fmt.Printf("shortest path %d -> %d: cost %.4f via fragment chain %v\n",
			*src, *dst, res.Cost, res.BestChain)
	}
	fmt.Printf("chains considered: %d, same fragment: %v, elapsed: %v\n",
		res.ChainsConsidered, res.SameFragment, res.Elapsed)
	if *showPath && res.Reachable && *highway < 0 {
		_, route, err := store.QueryPath(graph.NodeID(*src), graph.NodeID(*dst))
		if err != nil {
			fatal(err)
		}
		if route != nil {
			fmt.Printf("route: %v\n", route.Nodes)
		}
	}
	if *verbose {
		fmt.Printf("assembly: %d joins, largest operand %d tuples\n",
			res.Assembly.Joins, res.Assembly.MaxOperand)
		fmt.Printf("messages: %d, tuples shipped: %d, critical path: %v\n",
			res.MessagesSent, res.TuplesShipped, res.CriticalPath)
		for id, w := range res.PerSite {
			fmt.Printf("  site %d: %d legs, %d iterations, %d derived tuples, busy %v\n",
				id, w.Legs, w.Stats.Iterations, w.Stats.DerivedTuples, w.Elapsed)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcquery:", err)
	os.Exit(1)
}
