// Command tcquery answers transitive-closure queries over a fragmented
// graph through the public tcq facade: it builds the complementary
// information, validates the request, lets the planner pick the engine
// (or honours -engine), runs the per-site subqueries and assembles the
// answer, reporting the paper's performance quantities along the way.
//
// Sources and targets are sets: -src and -dst accept comma-separated
// node lists and every (source, target) pair is answered.
//
// Usage:
//
//	tcquery -graph graph.txt -frag frags.txt -src 3 -dst 97
//	tcquery -graph graph.txt -frag frags.txt -src 3,4 -dst 97,98 -mode cost -limit 2
//	tcquery -graph graph.txt -frag frags.txt -src 3 -dst 97 -mode pipelined -engine dense
//	tcquery -graph graph.txt -frag frags.txt -src 3 -dst 97 -mode connectivity
//	tcquery -graph graph.txt -frag frags.txt -src 3 -dst 97 -phe 4
//	tcquery -graph graph.txt -frag frags.txt -src 3 -dst 97 -o json | jq .answers[0].cost
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/fragment"
	"repro/internal/graph"
	"repro/internal/phe"
	"repro/pkg/tcq"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "graph file (required)")
		fragFile  = flag.String("frag", "", "fragmentation file (required)")
		src       = flag.String("src", "", "source node or comma-separated node set (required)")
		dst       = flag.String("dst", "", "target node or comma-separated node set (required)")
		mode      = flag.String("mode", "cost", "query mode: connectivity, cost or pipelined")
		engine    = flag.String("engine", "auto", "engine: auto (planner decides), dijkstra, seminaive, bitset or dense")
		limit     = flag.Int("limit", 0, "cap the number of (source, target) answers (0 = all)")
		highway   = flag.Int("phe", -1, "use parallel hierarchical evaluation with this highway fragment (single-pair queries)")
		maxChains = flag.Int("max-chains", 0, "bound chain enumeration (0 = unlimited)")
		verbose   = flag.Bool("v", false, "print the plan and per-site work")
		showPath  = flag.Bool("path", false, "reconstruct and print the actual node route (single-pair cost queries)")
		output    = flag.String("o", "text", "output format: text or json (machine-readable, one document on stdout)")
	)
	flag.Parse()
	if *output != "text" && *output != "json" {
		fatal(fmt.Errorf("-o %q: want text or json", *output))
	}
	if *graphFile == "" || *fragFile == "" || *src == "" || *dst == "" {
		fatal(fmt.Errorf("-graph, -frag, -src and -dst are required"))
	}
	sources, err := parseNodeSet(*src)
	if err != nil {
		fatal(fmt.Errorf("-src: %v", err))
	}
	targets, err := parseNodeSet(*dst)
	if err != nil {
		fatal(fmt.Errorf("-dst: %v", err))
	}
	qmode, err := tcq.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	eng, err := tcq.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}

	gf, err := os.Open(*graphFile)
	if err != nil {
		fatal(err)
	}
	g, err := graph.Read(gf)
	gf.Close()
	if err != nil {
		fatal(err)
	}
	ff, err := os.Open(*fragFile)
	if err != nil {
		fatal(err)
	}
	fr, err := fragment.Read(g, ff)
	ff.Close()
	if err != nil {
		fatal(err)
	}

	client, err := tcq.Build(fr, tcq.BuildOptions{MaxChains: *maxChains})
	if err != nil {
		fatal(err)
	}
	defer client.Close()
	jsonOut := *output == "json"
	// In JSON mode stdout carries exactly one machine-readable
	// document; the human-oriented progress lines move to stderr.
	info := os.Stdout
	if jsonOut {
		info = os.Stderr
	}
	prep := client.Preprocessing()
	fmt.Fprintf(info, "store: %d sites, %d disconnection sets, loosely connected: %v\n",
		client.Sites(), prep.DisconnectionSets, client.LooselyConnected())
	fmt.Fprintf(info, "preprocessing: %d global searches, %d complementary facts\n",
		prep.DijkstraRuns, prep.PairsStored)

	req := tcq.Request{Sources: sources, Targets: targets, Mode: qmode, Engine: eng, Limit: *limit}
	ctx := context.Background()

	// The hierarchical evaluator routes through a highway fragment; it
	// answers single pairs with a planner-resolved engine and pooled
	// (non-pipelined) evaluation.
	if *highway >= 0 {
		if jsonOut {
			fatal(fmt.Errorf("-o json is not supported with -phe"))
		}
		if len(sources) != 1 || len(targets) != 1 {
			fatal(fmt.Errorf("-phe answers single-pair queries; got %d sources, %d targets", len(sources), len(targets)))
		}
		if qmode == tcq.ModePipelined {
			fatal(fmt.Errorf("-phe does not support -mode pipelined (hierarchical legs run pooled)"))
		}
		if *verbose || *showPath || *limit > 0 {
			fmt.Fprintln(os.Stderr, "tcquery: -v, -path and -limit are ignored with -phe")
		}
		ex, err := client.Plan(req)
		if err != nil {
			fatal(err)
		}
		h, err := phe.New(client.Store(), *highway)
		if err != nil {
			fatal(err)
		}
		s, t := graph.NodeID(sources[0]), graph.NodeID(targets[0])
		if qmode == tcq.ModeConnectivity {
			connected, err := h.ConnectedNamed(s, t, ex.Engine.String())
			if err != nil {
				fatal(err)
			}
			printConnected(sources[0], targets[0], connected)
		} else {
			res, err := h.QueryNamed(s, t, ex.Engine.String())
			if err != nil {
				fatal(err)
			}
			if !res.Reachable {
				printConnected(sources[0], targets[0], false)
			} else {
				fmt.Printf("shortest path %d -> %d: cost %.4f via fragment chain %v\n",
					sources[0], targets[0], res.Cost, res.BestChain)
			}
		}
		return
	}

	res, err := client.Query(ctx, req)
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		if err := writeJSON(client, ctx, res, qmode, *showPath, sources, targets); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("plan: %s (%s)\n", res.Explain.Canonical(), res.Explain.Reason)
	for _, ans := range res.Answers {
		switch {
		case qmode == tcq.ModeConnectivity:
			printConnected(ans.Source, ans.Target, ans.Reachable)
		case !ans.Reachable:
			printConnected(ans.Source, ans.Target, false)
		default:
			fmt.Printf("shortest path %d -> %d: cost %.4f via fragment chain %v\n",
				ans.Source, ans.Target, ans.Cost, ans.BestChain)
		}
		if *verbose {
			fmt.Printf("  chains considered: %d, same fragment: %v, elapsed: %v\n",
				ans.ChainsConsidered, ans.SameFragment, ans.Elapsed)
			fmt.Printf("  assembly: %d joins, largest operand %d tuples; tuples shipped: %d\n",
				ans.AssemblyJoins, ans.MaxOperand, ans.TuplesShipped)
			for id, w := range ans.PerSite {
				fmt.Printf("  site %d: %d legs, %d iterations, %d derived tuples, busy %v\n",
					id, w.Legs, w.Stats.Iterations, w.Stats.DerivedTuples, w.Elapsed)
			}
		}
	}
	if res.LimitHit {
		fmt.Printf("(limit %d hit: %d of %d pairs answered)\n", *limit, len(res.Answers), res.Explain.Pairs)
	}
	fmt.Printf("answered %d pair(s) in %v\n", len(res.Answers), res.Elapsed)

	if *showPath && qmode != tcq.ModeConnectivity && len(sources) == 1 && len(targets) == 1 {
		if ans := res.Answers[0]; ans.Reachable {
			_, route, err := client.QueryPath(ctx, sources[0], targets[0])
			if err != nil {
				fatal(err)
			}
			fmt.Printf("route: %v\n", route.Nodes)
		}
	}
}

// jsonPlan is the machine-readable rendering of the planner decision.
type jsonPlan struct {
	Mode   string `json:"mode"`
	Engine string `json:"engine"`
	Forced bool   `json:"forced"`
	Reason string `json:"reason"`
	Pairs  int    `json:"pairs"`
}

// jsonAnswer is one (source, target) pair in -o json output.
type jsonAnswer struct {
	Source    int  `json:"source"`
	Target    int  `json:"target"`
	Reachable bool `json:"reachable"`
	// Cost is present only on reachable cost-mode answers (+Inf does
	// not survive JSON).
	Cost             *float64 `json:"cost,omitempty"`
	BestChain        []int    `json:"best_chain,omitempty"`
	SameFragment     bool     `json:"same_fragment"`
	Truncated        bool     `json:"truncated"`
	ChainsConsidered int      `json:"chains_considered"`
	Sites            int      `json:"sites"`
	TuplesShipped    int      `json:"tuples_shipped"`
	ElapsedUS        int64    `json:"elapsed_us"`
	// Route is the reconstructed node sequence (single-pair cost
	// queries with -path only).
	Route []int `json:"route,omitempty"`
}

// jsonOutput is the single document -o json writes to stdout.
type jsonOutput struct {
	Plan      jsonPlan     `json:"plan"`
	Answers   []jsonAnswer `json:"answers"`
	LimitHit  bool         `json:"limit_hit"`
	ElapsedUS int64        `json:"elapsed_us"`
}

// writeJSON renders the result as one JSON document on stdout — the
// machine-readable surface for scripting and CI checks.
func writeJSON(client *tcq.Client, ctx context.Context, res *tcq.Result, qmode tcq.Mode, showPath bool, sources, targets []int) error {
	out := jsonOutput{
		Plan: jsonPlan{
			Mode:   res.Explain.Mode.String(),
			Engine: res.Explain.Engine.String(),
			Forced: res.Explain.Forced,
			Reason: res.Explain.Reason,
			Pairs:  res.Explain.Pairs,
		},
		LimitHit:  res.LimitHit,
		ElapsedUS: res.Elapsed.Microseconds(),
	}
	costMode := qmode != tcq.ModeConnectivity
	for _, ans := range res.Answers {
		ja := jsonAnswer{
			Source:           ans.Source,
			Target:           ans.Target,
			Reachable:        ans.Reachable,
			BestChain:        ans.BestChain,
			SameFragment:     ans.SameFragment,
			Truncated:        ans.Truncated,
			ChainsConsidered: ans.ChainsConsidered,
			Sites:            ans.Sites,
			TuplesShipped:    ans.TuplesShipped,
			ElapsedUS:        ans.Elapsed.Microseconds(),
		}
		if costMode && ans.Reachable {
			cost := ans.Cost
			ja.Cost = &cost
		}
		if showPath && costMode && ans.Reachable && len(sources) == 1 && len(targets) == 1 {
			_, route, err := client.QueryPath(ctx, ans.Source, ans.Target)
			if err != nil {
				return err
			}
			for _, n := range route.Nodes {
				ja.Route = append(ja.Route, int(n))
			}
		}
		out.Answers = append(out.Answers, ja)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// parseNodeSet parses a comma-separated node list.
func parseNodeSet(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad node %q: %v", p, err)
		}
		if id < 0 {
			return nil, fmt.Errorf("negative node %d", id)
		}
		out = append(out, id)
	}
	return out, nil
}

// printConnected renders a connectivity answer.
func printConnected(src, dst int, connected bool) {
	if connected {
		fmt.Printf("%d and %d are connected\n", src, dst)
	} else {
		fmt.Printf("%d and %d are NOT connected\n", src, dst)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcquery:", err)
	os.Exit(1)
}
