// Command tcquery answers transitive-closure queries over a fragmented
// graph through the public tcq facade: it builds the complementary
// information, validates the request, lets the planner pick the engine
// (or honours -engine), runs the per-site subqueries and assembles the
// answer, reporting the paper's performance quantities along the way.
//
// Sources and targets are sets: -src and -dst accept comma-separated
// node lists and every (source, target) pair is answered.
//
// Usage:
//
//	tcquery -graph graph.txt -frag frags.txt -src 3 -dst 97
//	tcquery -graph graph.txt -frag frags.txt -src 3,4 -dst 97,98 -mode cost -limit 2
//	tcquery -graph graph.txt -frag frags.txt -src 3 -dst 97 -mode pipelined -engine dense
//	tcquery -graph graph.txt -frag frags.txt -src 3 -dst 97 -mode connectivity
//	tcquery -graph graph.txt -frag frags.txt -src 3 -dst 97 -phe 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/fragment"
	"repro/internal/graph"
	"repro/internal/phe"
	"repro/pkg/tcq"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "graph file (required)")
		fragFile  = flag.String("frag", "", "fragmentation file (required)")
		src       = flag.String("src", "", "source node or comma-separated node set (required)")
		dst       = flag.String("dst", "", "target node or comma-separated node set (required)")
		mode      = flag.String("mode", "cost", "query mode: connectivity, cost or pipelined")
		engine    = flag.String("engine", "auto", "engine: auto (planner decides), dijkstra, seminaive, bitset or dense")
		limit     = flag.Int("limit", 0, "cap the number of (source, target) answers (0 = all)")
		highway   = flag.Int("phe", -1, "use parallel hierarchical evaluation with this highway fragment (single-pair queries)")
		maxChains = flag.Int("max-chains", 0, "bound chain enumeration (0 = unlimited)")
		verbose   = flag.Bool("v", false, "print the plan and per-site work")
		showPath  = flag.Bool("path", false, "reconstruct and print the actual node route (single-pair cost queries)")
	)
	flag.Parse()
	if *graphFile == "" || *fragFile == "" || *src == "" || *dst == "" {
		fatal(fmt.Errorf("-graph, -frag, -src and -dst are required"))
	}
	sources, err := parseNodeSet(*src)
	if err != nil {
		fatal(fmt.Errorf("-src: %v", err))
	}
	targets, err := parseNodeSet(*dst)
	if err != nil {
		fatal(fmt.Errorf("-dst: %v", err))
	}
	qmode, err := tcq.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	eng, err := tcq.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}

	gf, err := os.Open(*graphFile)
	if err != nil {
		fatal(err)
	}
	g, err := graph.Read(gf)
	gf.Close()
	if err != nil {
		fatal(err)
	}
	ff, err := os.Open(*fragFile)
	if err != nil {
		fatal(err)
	}
	fr, err := fragment.Read(g, ff)
	ff.Close()
	if err != nil {
		fatal(err)
	}

	client, err := tcq.Build(fr, tcq.BuildOptions{MaxChains: *maxChains})
	if err != nil {
		fatal(err)
	}
	defer client.Close()
	prep := client.Preprocessing()
	fmt.Printf("store: %d sites, %d disconnection sets, loosely connected: %v\n",
		client.Sites(), prep.DisconnectionSets, client.LooselyConnected())
	fmt.Printf("preprocessing: %d global searches, %d complementary facts\n",
		prep.DijkstraRuns, prep.PairsStored)

	req := tcq.Request{Sources: sources, Targets: targets, Mode: qmode, Engine: eng, Limit: *limit}
	ctx := context.Background()

	// The hierarchical evaluator routes through a highway fragment; it
	// answers single pairs with a planner-resolved engine and pooled
	// (non-pipelined) evaluation.
	if *highway >= 0 {
		if len(sources) != 1 || len(targets) != 1 {
			fatal(fmt.Errorf("-phe answers single-pair queries; got %d sources, %d targets", len(sources), len(targets)))
		}
		if qmode == tcq.ModePipelined {
			fatal(fmt.Errorf("-phe does not support -mode pipelined (hierarchical legs run pooled)"))
		}
		if *verbose || *showPath || *limit > 0 {
			fmt.Fprintln(os.Stderr, "tcquery: -v, -path and -limit are ignored with -phe")
		}
		ex, err := client.Plan(req)
		if err != nil {
			fatal(err)
		}
		h, err := phe.New(client.Store(), *highway)
		if err != nil {
			fatal(err)
		}
		s, t := graph.NodeID(sources[0]), graph.NodeID(targets[0])
		if qmode == tcq.ModeConnectivity {
			connected, err := h.ConnectedNamed(s, t, ex.Engine.String())
			if err != nil {
				fatal(err)
			}
			printConnected(sources[0], targets[0], connected)
		} else {
			res, err := h.QueryNamed(s, t, ex.Engine.String())
			if err != nil {
				fatal(err)
			}
			if !res.Reachable {
				printConnected(sources[0], targets[0], false)
			} else {
				fmt.Printf("shortest path %d -> %d: cost %.4f via fragment chain %v\n",
					sources[0], targets[0], res.Cost, res.BestChain)
			}
		}
		return
	}

	res, err := client.Query(ctx, req)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("plan: %s (%s)\n", res.Explain.Canonical(), res.Explain.Reason)
	for _, ans := range res.Answers {
		switch {
		case qmode == tcq.ModeConnectivity:
			printConnected(ans.Source, ans.Target, ans.Reachable)
		case !ans.Reachable:
			printConnected(ans.Source, ans.Target, false)
		default:
			fmt.Printf("shortest path %d -> %d: cost %.4f via fragment chain %v\n",
				ans.Source, ans.Target, ans.Cost, ans.BestChain)
		}
		if *verbose {
			fmt.Printf("  chains considered: %d, same fragment: %v, elapsed: %v\n",
				ans.ChainsConsidered, ans.SameFragment, ans.Elapsed)
			fmt.Printf("  assembly: %d joins, largest operand %d tuples; tuples shipped: %d\n",
				ans.AssemblyJoins, ans.MaxOperand, ans.TuplesShipped)
			for id, w := range ans.PerSite {
				fmt.Printf("  site %d: %d legs, %d iterations, %d derived tuples, busy %v\n",
					id, w.Legs, w.Stats.Iterations, w.Stats.DerivedTuples, w.Elapsed)
			}
		}
	}
	if res.LimitHit {
		fmt.Printf("(limit %d hit: %d of %d pairs answered)\n", *limit, len(res.Answers), res.Explain.Pairs)
	}
	fmt.Printf("answered %d pair(s) in %v\n", len(res.Answers), res.Elapsed)

	if *showPath && qmode != tcq.ModeConnectivity && len(sources) == 1 && len(targets) == 1 {
		if ans := res.Answers[0]; ans.Reachable {
			_, route, err := client.QueryPath(ctx, sources[0], targets[0])
			if err != nil {
				fatal(err)
			}
			fmt.Printf("route: %v\n", route.Nodes)
		}
	}
}

// parseNodeSet parses a comma-separated node list.
func parseNodeSet(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad node %q: %v", p, err)
		}
		if id < 0 {
			return nil, fmt.Errorf("negative node %d", id)
		}
		out = append(out, id)
	}
	return out, nil
}

// printConnected renders a connectivity answer.
func printConnected(src, dst int, connected bool) {
	if connected {
		fmt.Printf("%d and %d are connected\n", src, dst)
	} else {
		fmt.Printf("%d and %d are NOT connected\n", src, dst)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcquery:", err)
	os.Exit(1)
}
