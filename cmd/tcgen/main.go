// Command tcgen generates the random test graphs of ICDE'93 §4.1 and
// writes them in the text format the other tools consume.
//
// Usage:
//
//	tcgen -type transport -clusters 4 -nodes 25 -o graph.txt
//	tcgen -type general -nodes 100 -degree 2.8 -seed 7 -o graph.txt
//
// -nodes is the per-cluster node count for transportation graphs and
// the total for general graphs. -degree targets the average undirected
// degree (the generator's c1 is derived from it; see
// gen.DefaultsWithDegree).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	var (
		typ      = flag.String("type", "transport", "graph family: transport or general")
		clusters = flag.Int("clusters", 4, "number of clusters (transport)")
		nodes    = flag.Int("nodes", 25, "nodes per cluster (transport) or total (general)")
		degree   = flag.Float64("degree", 4.5, "target average undirected degree")
		seed     = flag.Int64("seed", 1, "random seed")
		unit     = flag.Bool("unit-weights", false, "unit edge costs instead of Euclidean distances")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	cfg := gen.DefaultsWithDegree(*nodes, *degree, *seed)
	cfg.UnitWeights = *unit

	var (
		g   *graph.Graph
		err error
	)
	switch *typ {
	case "transport":
		g, err = gen.Transportation(gen.TransportConfig{Clusters: *clusters, Cluster: cfg})
	case "general":
		g, err = gen.General(cfg)
	default:
		err = fmt.Errorf("unknown -type %q (want transport or general)", *typ)
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := g.Write(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %s (diameter %d)\n", g, g.Diameter())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcgen:", err)
	os.Exit(1)
}
