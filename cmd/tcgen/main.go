// Command tcgen generates the random test graphs of ICDE'93 §4.1 —
// plus the road-network family the persistence layer targets — and
// writes them in the formats the other tools consume.
//
// Usage:
//
//	tcgen -type transport -clusters 4 -nodes 25 -o graph.txt
//	tcgen -type general -nodes 100 -degree 2.8 -seed 7 -o graph.txt
//	tcgen -type road -clusters 4 -nodes 25 -gateways 2 -o road.graph -frag-o road.frags
//	tcgen -type road -edges 1200000 -o road.tcs -frag-o road.frags
//
// -nodes is the per-cluster node count for transportation and road
// graphs and the total for general graphs. -degree targets the average
// undirected degree (the generator's c1 is derived from it; see
// gen.DefaultsWithDegree).
//
// Road graphs come with their natural fragmentation (one fragment per
// city): -frag-o writes it in the text format fragment.Read consumes.
// When -o ends in ".tcs" the graph is preprocessed (the disconnection
// set build) and written as a binary TCSF snapshot instead of text, so
// a server can cold-start from it without re-running the build.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/fragment"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/pkg/tcq"
)

func main() {
	var (
		typ      = flag.String("type", "transport", "graph family: transport, general or road")
		clusters = flag.Int("clusters", 4, "number of clusters (transport, road)")
		nodes    = flag.Int("nodes", 25, "nodes per cluster (transport, road) or total (general)")
		degree   = flag.Float64("degree", 4.5, "target average undirected degree")
		gateways = flag.Int("gateways", 2, "highway connections between adjacent cities (road)")
		edges    = flag.Int("edges", 0, "directed-edge target for road graphs (overrides -clusters/-nodes)")
		seed     = flag.Int64("seed", 1, "random seed")
		unit     = flag.Bool("unit-weights", false, "unit edge costs instead of Euclidean distances")
		out      = flag.String("o", "", "output file (default stdout); a .tcs suffix writes a TCSF snapshot (road)")
		fragOut  = flag.String("frag-o", "", "write the fragmentation to this file (road)")
	)
	flag.Parse()

	cfg := gen.DefaultsWithDegree(*nodes, *degree, *seed)
	cfg.UnitWeights = *unit

	var (
		g    *graph.Graph
		sets [][]graph.Edge
		err  error
	)
	switch *typ {
	case "transport":
		g, err = gen.Transportation(gen.TransportConfig{Clusters: *clusters, Cluster: cfg})
	case "general":
		g, err = gen.General(cfg)
	case "road":
		rcfg := gen.RoadConfig{
			Clusters:     *clusters,
			ClusterWidth: sideFor(*nodes), ClusterHeight: sideFor(*nodes),
			Gateways:     *gateways,
			DiagonalProb: 0.05,
			Seed:         *seed,
		}
		if *edges > 0 {
			rcfg = gen.RoadConfigForEdges(*edges, *seed)
		}
		g, sets, err = gen.RoadNetwork(rcfg)
	default:
		err = fmt.Errorf("unknown -type %q (want transport, general or road)", *typ)
	}
	if err != nil {
		fatal(err)
	}

	var fr *fragment.Fragmentation
	if sets != nil {
		if fr, err = fragment.New(g, sets); err != nil {
			fatal(err)
		}
	}

	if *fragOut != "" {
		if fr == nil {
			fatal(fmt.Errorf("-frag-o requires -type road"))
		}
		if err := writeTo(*fragOut, fr.Write); err != nil {
			fatal(err)
		}
	}

	if strings.HasSuffix(*out, ".tcs") {
		if fr == nil {
			fatal(fmt.Errorf("snapshot output requires -type road"))
		}
		st, err := tcq.BuildStore(fr, tcq.BuildOptions{})
		if err != nil {
			fatal(err)
		}
		ds, err := tcq.OpenDataset(st)
		if err != nil {
			fatal(err)
		}
		n, err := tcq.SaveSnapshot(*out, ds.Snapshot())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "generated %s, snapshot %s (%.1f MiB)\n", g, *out, float64(n)/(1<<20))
		return
	}

	if err := writeTo(*out, g.Write); err != nil {
		fatal(err)
	}
	if fr != nil {
		fmt.Fprintf(os.Stderr, "generated %s (%d fragments)\n", g, fr.NumFragments())
	} else {
		fmt.Fprintf(os.Stderr, "generated %s (diameter %d)\n", g, g.Diameter())
	}
}

// sideFor returns the smallest square-city side covering the requested
// per-cluster node count.
func sideFor(nodes int) int {
	side := 2
	for side*side < nodes {
		side++
	}
	return side
}

// writeTo streams one text artifact to path, or stdout when path is
// empty.
func writeTo(path string, write func(io.Writer) error) error {
	if path == "" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := write(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcgen:", err)
	os.Exit(1)
}
