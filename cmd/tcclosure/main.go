// Command tcclosure computes the transitive closure of a graph file
// with a chosen algorithm and reports the fixpoint statistics — the
// single-processor building block the disconnection set approach
// parallelises. With -src the computation is source-restricted
// (selection pushing); with -costs the weighted closure is computed
// instead of reachability.
//
// Usage:
//
//	tcclosure -in graph.txt -alg seminaive
//	tcclosure -in graph.txt -alg smart -src 3
//	tcclosure -in graph.txt -costs -src 3
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/relation"
	"repro/internal/tc"
)

func main() {
	var (
		in    = flag.String("in", "", "input graph file (required)")
		alg   = flag.String("alg", "seminaive", "naive, seminaive, smart, warshall or condensed")
		src   = flag.Int("src", -1, "restrict to paths from this source node")
		costs = flag.Bool("costs", false, "compute cheapest-path costs instead of reachability")
		dump  = flag.Bool("dump", false, "print the closure tuples")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	g, err := graph.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	rel := relation.FromGraph(g)

	var (
		out   *relation.Relation
		stats tc.Stats
	)
	switch {
	case *costs && *src >= 0:
		out, stats, err = tc.ShortestFrom(rel, []graph.NodeID{graph.NodeID(*src)})
	case *costs:
		out, stats, err = tc.ShortestClosure(rel)
	case *src >= 0:
		out, stats, err = tc.ReachableFrom(rel, []graph.NodeID{graph.NodeID(*src)})
	default:
		switch *alg {
		case "naive":
			out, stats, err = tc.NaiveClosure(rel)
		case "seminaive":
			out, stats, err = tc.SemiNaiveClosure(rel)
		case "smart":
			out, stats, err = tc.SmartClosure(rel)
		case "warshall":
			out, stats, err = tc.WarshallClosure(rel)
		case "condensed":
			out, stats, err = tc.CondensedClosure(rel)
		default:
			err = fmt.Errorf("unknown -alg %q (want naive, seminaive, smart, warshall or condensed)", *alg)
		}
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("closure: %d tuples in %d iterations (%d derived tuples; graph diameter %d)\n",
		stats.ResultTuples, stats.Iterations, stats.DerivedTuples, g.Diameter())
	if *dump {
		fmt.Print(out.Sort())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcclosure:", err)
	os.Exit(1)
}
