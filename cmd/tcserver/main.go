// Command tcserver is the long-lived query-serving daemon: it deploys
// a disconnection-set store once (graph + fragmentation + complementary
// information) and then answers shortest-path and reachability queries
// over HTTP/JSON, with persistent per-site workers and a bounded LRU
// leg-result cache that memoizes per-site searches across queries.
//
// Usage:
//
//	tcserver -graph graph.txt -frag frags.txt -listen :8642
//	tcserver -grid 64x64 -fragments 8 -listen 127.0.0.1:8642
//	tcserver -grid 32x32 -fragments 4 -engine dense -cache 4096
//	tcserver -grid 64x64 -fragments 8 -pprof   # /debug/pprof/ exposed
//	tcserver -grid 64x64 -fragments 8 -node-id a \
//	        -peers a=http://h1:8642,b=http://h2:8642,c=http://h3:8642
//
// With -node-id/-peers the node joins a static multi-node cluster: a
// consistent-hash ring assigns every site an owning node, queries
// scatter-gather their legs across owners over POST /v1/leg (the
// internal peer endpoint), and /v1/update transactions fan out to all
// peers with a coherent epoch swap (see the README's cluster section).
//
// Endpoints: POST /v1/query, POST /v1/batch and POST /v1/update (the
// versioned facade API: source/target sets, modes, auto-planned
// engines, transactional op batches, typed error codes), plus the
// legacy shims /query, /connected, and /update, /stats, /healthz (see
// the README's serving section for schemas), and GET /metrics, the
// Prometheus text exposition — per-engine latency histograms,
// leg-cache and epoch-churn counters (see the README's observability
// section for the catalog). Updates are copy-on-write and never block
// in-flight queries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/fragment"
	"repro/internal/fragment/linear"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/pkg/tcq"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "graph file (with -frag; alternative to -grid)")
		fragFile  = flag.String("frag", "", "fragmentation file (with -graph)")
		grid      = flag.String("grid", "", "generate a WxH grid graph in-process, e.g. 64x64")
		frags     = flag.Int("fragments", 8, "fragment count for the generated grid (linear sweep)")
		diag      = flag.Float64("diag", 0.1, "diagonal shortcut probability for the generated grid")
		seed      = flag.Int64("seed", 1, "seed for the generated grid")
		listen    = flag.String("listen", ":8642", "listen address")
		engine    = flag.String("engine", "auto", "default engine for legacy requests: auto (planner decides), dijkstra, seminaive, bitset or dense")
		problem   = flag.String("problem", "shortestpath", "precomputed problem: shortestpath or reachability")
		cacheCap  = flag.Int("cache", 1024, "leg-result cache capacity in entries (0 disables)")
		workers   = flag.Int("site-workers", 1, "worker goroutines per site")
		maxChains = flag.Int("max-chains", 0, "bound chain enumeration (0 = unlimited)")
		storeDir  = flag.String("store", "", "durable store directory: applies are journaled and checkpointed; recovered on boot when it already holds state")
		tcsFile   = flag.String("tcs", "", "cold-start from this TCSF snapshot file (alternative to text input or generation)")
		ckptEvery = flag.Int("checkpoint-every", 0, "journaled batches between automatic checkpoints (0 = store default, negative = never)")
		withPprof = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ for live profiling")
		nodeID    = flag.String("node-id", "", "this node's ID in a multi-node cluster (requires -peers)")
		peers     = flag.String("peers", "", "static cluster membership as id=url pairs, e.g. a=http://h1:8642,b=http://h2:8642 (this node included)")
		rpcTO     = flag.Duration("rpc-timeout", 5*time.Second, "per-RPC deadline for cluster peer calls")

		brkThreshold = flag.Int("breaker-threshold", 5, "consecutive transport failures before a peer's circuit breaker opens")
		brkInterval  = flag.Duration("breaker-open-interval", 2*time.Second, "how long an open breaker refuses a peer before probing it again")
		brkProbes    = flag.Int("breaker-probes", 1, "concurrent probe RPCs allowed while a breaker is half-open")
		legRetries   = flag.Int("leg-retries", 2, "extra attempts for an idempotent leg read after a transport failure (0 disables retries)")
		retryBackoff = flag.Duration("retry-backoff", 25*time.Millisecond, "base backoff between leg retries (doubles per retry, full jitter)")
		faultScript  = flag.String("fault-script", "", "deterministic per-peer fault injection, e.g. 'b:down*8,ok;c:timeout*2,ok*' (testing only)")
	)
	flag.Parse()

	eng, err := tcq.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	prob, err := tcq.ParseProblem(*problem)
	if err != nil {
		fatal(err)
	}
	// Three boot paths, in priority order: recover a durable store
	// directory; cold-start from a TCSF snapshot file; parse text (or
	// generate) and run the preprocessing build. The first is the
	// restart path — it alone reaches the exact epoch of every
	// acknowledged update. The latter two seed -store when it is named
	// but empty, so the next restart takes the first path.
	var ds *tcq.Dataset
	bootStart := time.Now()
	switch {
	case *storeDir != "" && tcq.HasStore(*storeDir):
		var info tcq.PersistInfo
		ds, info, err = tcq.OpenStore(*storeDir, tcq.PersistOptions{CheckpointEvery: *ckptEvery})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tcserver: recovered %s in %v: checkpoint epoch %d + %d journal records -> epoch %d (torn tail: %v)\n",
			*storeDir, time.Since(bootStart).Round(time.Millisecond),
			info.CheckpointEpoch, info.ReplayedRecords, info.Epoch, info.TornTail)
	case *tcsFile != "":
		ds, err = tcq.LoadSnapshot(*tcsFile)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tcserver: loaded snapshot %s in %v\n",
			*tcsFile, time.Since(bootStart).Round(time.Millisecond))
		if ds, err = attachStore(ds, *storeDir, *ckptEvery); err != nil {
			fatal(err)
		}
	default:
		fr, err := loadFragmentation(*graphFile, *fragFile, *grid, *frags, *diag, *seed)
		if err != nil {
			fatal(err)
		}
		ds, err = tcq.NewDataset(fr, tcq.BuildOptions{MaxChains: *maxChains, Problem: prob})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tcserver: store built in %v\n",
			time.Since(bootStart).Round(time.Millisecond))
		if ds, err = attachStore(ds, *storeDir, *ckptEvery); err != nil {
			fatal(err)
		}
	}
	defer ds.Close()
	snap := ds.Snapshot()
	prep := snap.Preprocessing()
	fmt.Fprintf(os.Stderr, "tcserver: deployed epoch %d: %d sites, %d disconnection sets, %d complementary facts, loosely connected: %v\n",
		snap.Epoch(), snap.Stats().Sites,
		prep.DisconnectionSets, prep.PairsStored, snap.Stats().LooselyConnected)

	coord, err := buildCluster(clusterFlags{
		nodeID:       *nodeID,
		peers:        *peers,
		rpcTimeout:   *rpcTO,
		brkThreshold: *brkThreshold,
		brkInterval:  *brkInterval,
		brkProbes:    *brkProbes,
		legRetries:   *legRetries,
		retryBackoff: *retryBackoff,
		faultScript:  *faultScript,
	}, snap.Stats().Sites)
	if err != nil {
		fatal(err)
	}

	srv, err := server.NewDataset(ds, server.Config{
		DefaultEngine: eng,
		CacheCapacity: *cacheCap,
		SiteWorkers:   *workers,
		Cluster:       coord,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	handler := srv.Handler()
	if *withPprof {
		// The API handler owns every route except the profiler's; a
		// fresh mux composes them so -pprof stays a pure opt-in (the
		// import is gated here, not in the server package).
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		fmt.Fprintln(os.Stderr, "tcserver: pprof enabled at /debug/pprof/")
	}

	httpSrv := &http.Server{Addr: *listen, Handler: handler}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "tcserver: serving on %s (engine %s, cache %d, %d workers/site)\n",
		*listen, eng, *cacheCap, *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-sig:
		fmt.Fprintln(os.Stderr, "tcserver: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		// A clean shutdown checkpoints the current generation so the
		// next boot is replay-free; a crash falls back to checkpoint +
		// journal replay.
		if ds.Persistent() {
			if err := ds.Checkpoint(); err != nil {
				fmt.Fprintln(os.Stderr, "tcserver: shutdown checkpoint:", err)
			}
		}
	}
}

// attachStore makes a freshly built or snapshot-loaded dataset
// durable: it seeds dir with a checkpoint of the dataset's current
// generation and reopens through the store, so every subsequent apply
// is journaled before it is acknowledged. No-op when dir is empty.
func attachStore(ds *tcq.Dataset, dir string, ckptEvery int) (*tcq.Dataset, error) {
	if dir == "" {
		return ds, nil
	}
	if err := tcq.InitStore(dir, ds.Snapshot()); err != nil {
		return nil, err
	}
	d, info, err := tcq.OpenStore(dir, tcq.PersistOptions{CheckpointEvery: ckptEvery})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "tcserver: store directory %s initialised at epoch %d\n", dir, info.Epoch)
	return d, nil
}

// loadFragmentation builds the deployment input either from files or
// from an in-process grid generation (the CI smoke path: no
// intermediate files needed).
func loadFragmentation(graphFile, fragFile, grid string, frags int, diag float64, seed int64) (*fragment.Fragmentation, error) {
	switch {
	case grid != "":
		var w, h int
		if _, err := fmt.Sscanf(strings.ToLower(grid), "%dx%d", &w, &h); err != nil {
			return nil, fmt.Errorf("bad -grid %q (want WxH, e.g. 64x64)", grid)
		}
		g, err := gen.Grid(gen.GridConfig{Width: w, Height: h, DiagonalProb: diag, Seed: seed})
		if err != nil {
			return nil, err
		}
		res, err := linear.Fragment(g, linear.Options{NumFragments: frags})
		if err != nil {
			return nil, err
		}
		return res.Fragmentation, nil
	case graphFile != "" && fragFile != "":
		gf, err := os.Open(graphFile)
		if err != nil {
			return nil, err
		}
		g, err := graph.Read(gf)
		gf.Close()
		if err != nil {
			return nil, err
		}
		ff, err := os.Open(fragFile)
		if err != nil {
			return nil, err
		}
		fr, err := fragment.Read(g, ff)
		ff.Close()
		if err != nil {
			return nil, err
		}
		return fr, nil
	default:
		return nil, fmt.Errorf("need either -graph and -frag, or -grid")
	}
}

// clusterFlags carries the resolved -node-id/-peers flag group plus
// the resilience knobs (breaker, retry, fault injection).
type clusterFlags struct {
	nodeID       string
	peers        string
	rpcTimeout   time.Duration
	brkThreshold int
	brkInterval  time.Duration
	brkProbes    int
	legRetries   int
	retryBackoff time.Duration
	faultScript  string
}

// buildCluster resolves the -node-id/-peers flags into a coordinator
// (nil when the flags are unset: a single-node deployment) and logs
// the site placement the consistent-hash ring derived — identical on
// every member, so the log lines agree across the fleet. A non-empty
// -fault-script wraps each scripted peer's transport in a
// deterministic fault injector (the chaos CI hook).
func buildCluster(cf clusterFlags, sites int) (*cluster.Coordinator, error) {
	if cf.peers == "" && cf.nodeID == "" {
		return nil, nil
	}
	if cf.peers == "" || cf.nodeID == "" {
		return nil, fmt.Errorf("cluster mode needs both -node-id and -peers")
	}
	nodes, err := cluster.ParsePeers(cf.peers)
	if err != nil {
		return nil, err
	}
	cfg := cluster.Config{
		NodeID:  cf.nodeID,
		Peers:   nodes,
		Timeout: cf.rpcTimeout,
		Breaker: cluster.BreakerConfig{
			FailureThreshold: cf.brkThreshold,
			OpenInterval:     cf.brkInterval,
			HalfOpenProbes:   cf.brkProbes,
		},
		Retry: cluster.RetryConfig{
			Attempts:    cf.legRetries + 1,
			BaseBackoff: cf.retryBackoff,
		},
	}
	if cf.faultScript != "" {
		script, err := cluster.ParseFaultScript(cf.faultScript)
		if err != nil {
			return nil, fmt.Errorf("-fault-script: %w", err)
		}
		cfg.NewTransport = func(n cluster.Node) cluster.Transport {
			return cluster.NewFaultTransport(cluster.NewHTTPTransport(n, cf.rpcTimeout), n.ID, script)
		}
		fmt.Fprintf(os.Stderr, "tcserver: fault injection active: %s\n", cf.faultScript)
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	placement := coord.Placement(sites)
	fmt.Fprintf(os.Stderr, "tcserver: cluster node %q of %d nodes; site placement:\n", cf.nodeID, len(nodes))
	for _, n := range coord.Nodes() {
		marker := ""
		if n.ID == cf.nodeID {
			marker = " (this node)"
		}
		fmt.Fprintf(os.Stderr, "tcserver:   %s -> sites %v%s\n", n.ID, placement[n.ID], marker)
	}
	return coord, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcserver:", err)
	os.Exit(1)
}
