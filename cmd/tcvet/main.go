// Command tcvet runs the project-invariant analyzer suite over the
// module tree and fails loudly when a hard-won contract regresses:
// layering behind pkg/tcq, injected clocks in internal/cluster,
// drained-and-closed HTTP response bodies, the typed peer-error
// taxonomy, and the tc_ metric catalog. See internal/analysis for the
// analyzers and the //tcvet:ignore suppression syntax.
//
// Exit status: 0 clean, 1 findings, 2 the tree could not be loaded or
// type-checked.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	root := flag.String("root", ".", "module root (or any directory under it)")
	flag.Parse()
	os.Exit(run(*root))
}

func run(root string) int {
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcvet:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcvet:", err)
		return 2
	}
	catalog, err := analysis.MetricCatalogFromReadme(filepath.Join(loader.Root, "README.md"))
	if err != nil {
		// No README means no catalog to drift from; the naming rules
		// still apply.
		fmt.Fprintln(os.Stderr, "tcvet: metric catalog unavailable, skipping documentation cross-check:", err)
		catalog = nil
	}

	loadFailures := 0
	for _, pkg := range pkgs {
		if err := loader.Check(pkg); err != nil {
			fmt.Fprintln(os.Stderr, "tcvet:", err)
			loadFailures++
		}
	}

	diags := analysis.RunSuite(analysis.Suite(analysis.Options{MetricCatalog: catalog}), pkgs)
	for _, d := range diags {
		// Root-relative paths keep the output stable across checkouts
		// (and readable in CI artifacts).
		if rel, err := filepath.Rel(loader.Root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}

	switch {
	case loadFailures > 0:
		fmt.Fprintf(os.Stderr, "tcvet: %d package(s) failed to load\n", loadFailures)
		return 2
	case len(diags) > 0:
		fmt.Fprintf(os.Stderr, "tcvet: %d finding(s)\n", len(diags))
		return 1
	}
	fmt.Printf("tcvet: ok (%d packages, %d analyzers)\n", len(pkgs), len(analysis.Suite(analysis.Options{})))
	return 0
}
