// Command tcload is the parallel load generator for tcserver: N
// workers firing random or file-driven source/target queries, with
// replay passes that double as a cache-correctness oracle. It reports
// QPS, p50/p95/p99 latency and the server-side leg-cache hit rate, and
// exits non-zero on any transport error, non-2xx response, answer that
// changed between passes, unreachable answer under -expect-reachable,
// or hit rate below -min-hit-rate — the CI smoke gate.
//
// It is also the CI latency-SLO gate: -duration sustains the load for
// a wall-clock window, -slo-file (or the -slo-* flags) holds the run
// to committed p99/error budgets, and -json emits the machine-readable
// report — client latency percentiles, the SLO verdict, and a full
// scrape of the server's /metrics — that CI uploads as an artifact.
//
// Usage:
//
//	tcload -addr http://127.0.0.1:8642 -n 200 -parallel 8
//	tcload -addr http://127.0.0.1:8642 -n 200 -parallel 8 -repeat 2 -expect-reachable -min-hit-rate 0.05
//	tcload -addr http://127.0.0.1:8642 -pairs queries.txt -mode connected -engine bitset
//	tcload -addr http://127.0.0.1:8642 -n 200 -parallel 8 -api v1
//	tcload -addr http://127.0.0.1:8642 -n 200 -parallel 8 -write-rate 0.1 -expect-reachable
//	tcload -addr http://127.0.0.1:8642 -n 200 -parallel 8 -write-rate 0.15 \
//	    -duration 30s -slo-file SLO.json -json slo-report.json
//	tcload -addrs http://127.0.0.1:8642,http://127.0.0.1:8643,http://127.0.0.1:8644 \
//	    -n 200 -parallel 8 -repeat 2 -expect-reachable
//
// With -addrs the workload targets a cluster: read queries round-robin
// across every node (each is a full coordinator), while writes, the
// cache-delta differencing and the /metrics scrape pin to the first
// address. The replay oracle then doubles as a cross-node coherence
// check — every node must answer every pair identically.
//
// The -pairs file holds one "src dst" pair per line; # starts a
// comment.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8642", "server base URL")
		addrs      = flag.String("addrs", "", "comma-separated cluster base URLs: reads round-robin across them, writes and stats pin to the first (overrides -addr)")
		n          = flag.Int("n", 200, "requests per pass (random workload)")
		parallel   = flag.Int("parallel", 8, "concurrent workers")
		nodes      = flag.Int("nodes", 0, "random src/dst drawn from [0, nodes); 0 = ask the server's /stats")
		pairsFile  = flag.String("pairs", "", "file with explicit 'src dst' lines (overrides -n/-nodes)")
		mode       = flag.String("mode", "query", "query (shortest path) or connected (reachability)")
		api        = flag.String("api", "legacy", "wire surface: legacy (GET /query) or v1 (POST /v1/query)")
		engine     = flag.String("engine", "", "per-request engine (empty = server default)")
		seed       = flag.Int64("seed", 1, "random workload seed")
		repeat     = flag.Int("repeat", 1, "passes over the same workload (>1 exercises the leg cache)")
		duration   = flag.Duration("duration", 0, "keep replaying passes until this much wall-clock time elapsed (0 = exactly -repeat passes)")
		expectUp   = flag.Bool("expect-reachable", false, "fail on any unreachable answer (oracle for connected graphs)")
		minHitRate = flag.Float64("min-hit-rate", -1, "fail if the leg-cache hit rate over the run is below this (-1 = no check)")
		writeRate  = flag.Float64("write-rate", 0, "fraction of slots that fire /v1/update write transactions instead of queries (answer-invariant heavy-edge insert+delete)")
		sloFile    = flag.String("slo-file", "", "JSON budget file (SLO.json): run fails if the measured p99s or error rate exceed it")
		sloP99     = flag.Duration("slo-p99", 0, "read p99 budget (overrides the file's read_p99_ms; 0 = unset)")
		sloWriteP  = flag.Duration("slo-write-p99", 0, "write p99 budget (overrides the file's write_p99_ms; 0 = unset)")
		sloErrRate = flag.Float64("slo-error-rate", -1, "error-rate budget, errors/requests (overrides the file's error_rate; -1 = unset)")
		jsonOut    = flag.String("json", "", "write the machine-readable run report (latencies, SLO verdict, /metrics scrape) to this path ('-' = stdout)")
		retryTrans = flag.Int("retry-transient", 0, "re-fire a read query up to N extra times after a transient 502/504 gateway blip (writes are never retried); retry counts land in the -json report")
	)
	flag.Parse()

	cfg := server.LoadConfig{
		BaseURL:         strings.TrimRight(*addr, "/"),
		BaseURLs:        parseAddrs(*addrs),
		Requests:        *n,
		Parallel:        *parallel,
		Nodes:           *nodes,
		Engine:          *engine,
		Mode:            *mode,
		API:             *api,
		Seed:            *seed,
		Repeat:          *repeat,
		Duration:        *duration,
		ExpectReachable: *expectUp,
		WriteRate:       *writeRate,
		RetryTransient:  *retryTrans,
	}
	if *pairsFile != "" {
		pairs, err := readPairs(*pairsFile)
		if err != nil {
			fatal(err)
		}
		cfg.Pairs = pairs
	} else if cfg.Nodes <= 0 {
		statsURL := cfg.BaseURL
		if len(cfg.BaseURLs) > 0 {
			statsURL = cfg.BaseURLs[0]
		}
		st, err := server.FetchStats(statsURL)
		if err != nil {
			fatal(fmt.Errorf("discovering node count from /stats: %v", err))
		}
		cfg.Nodes = st.Nodes
	}

	budget, err := loadBudget(*sloFile, *sloP99, *sloWriteP, *sloErrRate)
	if err != nil {
		fatal(err)
	}

	rep, err := server.RunLoad(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Format())

	var slo *server.SLOReport
	if !budget.Empty() {
		slo = rep.SLO(budget)
		fmt.Printf("SLO: read p99 %.3fms  write p99 %.3fms  error rate %.5f  -> %s\n",
			slo.ReadP99Ms, slo.WriteP99Ms, slo.ErrorRate, verdict(slo.Pass))
	}
	if *jsonOut != "" {
		if err := writeReport(*jsonOut, rep, slo); err != nil {
			fatal(err)
		}
	}

	failed := false
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "tcload: FAIL: %d request errors\n", rep.Errors)
		failed = true
	}
	if rep.Mismatches > 0 {
		fmt.Fprintf(os.Stderr, "tcload: FAIL: %d answer mismatches\n", rep.Mismatches)
		failed = true
	}
	if *minHitRate >= 0 && rep.HitRate < *minHitRate {
		fmt.Fprintf(os.Stderr, "tcload: FAIL: leg-cache hit rate %.3f below floor %.3f\n", rep.HitRate, *minHitRate)
		failed = true
	}
	if slo != nil && !slo.Pass {
		for _, v := range slo.Violations {
			fmt.Fprintf(os.Stderr, "tcload: FAIL: SLO: %s\n", v)
		}
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// parseAddrs splits the -addrs cluster target list (nil when unset).
func parseAddrs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimRight(strings.TrimSpace(a), "/"); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// loadBudget combines the -slo-file budget with the flag overrides.
func loadBudget(path string, readP99, writeP99 time.Duration, errRate float64) (server.SLOBudget, error) {
	var b server.SLOBudget
	if path != "" {
		var err error
		b, err = server.LoadSLOBudget(path)
		if err != nil {
			return b, err
		}
	}
	if readP99 > 0 {
		ms := float64(readP99) / float64(time.Millisecond)
		b.ReadP99Ms = &ms
	}
	if writeP99 > 0 {
		ms := float64(writeP99) / float64(time.Millisecond)
		b.WriteP99Ms = &ms
	}
	if errRate >= 0 {
		b.ErrorRate = &errRate
	}
	return b, nil
}

// report is the -json envelope: the load report plus the SLO verdict.
type report struct {
	*server.LoadReport
	SLO *server.SLOReport `json:"slo,omitempty"`
}

// writeReport renders the machine-readable report to path or stdout.
func writeReport(path string, rep *server.LoadReport, slo *server.SLOReport) error {
	out, err := json.MarshalIndent(report{LoadReport: rep, SLO: slo}, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

func verdict(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}

// readPairs parses the explicit workload file.
func readPairs(path string) ([][2]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pairs [][2]int
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var src, dst int
		if _, err := fmt.Sscanf(text, "%d %d", &src, &dst); err != nil {
			return nil, fmt.Errorf("%s:%d: bad pair %q: %v", path, line, text, err)
		}
		pairs = append(pairs, [2]int{src, dst})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("%s: no pairs", path)
	}
	return pairs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcload:", err)
	os.Exit(1)
}
