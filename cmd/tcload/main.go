// Command tcload is the parallel load generator for tcserver: N
// workers firing random or file-driven source/target queries, with
// replay passes that double as a cache-correctness oracle. It reports
// QPS, p50/p95/p99 latency and the server-side leg-cache hit rate, and
// exits non-zero on any transport error, non-2xx response, answer that
// changed between passes, unreachable answer under -expect-reachable,
// or hit rate below -min-hit-rate — the CI smoke gate.
//
// Usage:
//
//	tcload -addr http://127.0.0.1:8642 -n 200 -parallel 8
//	tcload -addr http://127.0.0.1:8642 -n 200 -parallel 8 -repeat 2 -expect-reachable -min-hit-rate 0.05
//	tcload -addr http://127.0.0.1:8642 -pairs queries.txt -mode connected -engine bitset
//	tcload -addr http://127.0.0.1:8642 -n 200 -parallel 8 -api v1
//	tcload -addr http://127.0.0.1:8642 -n 200 -parallel 8 -write-rate 0.1 -expect-reachable
//
// The -pairs file holds one "src dst" pair per line; # starts a
// comment.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8642", "server base URL")
		n          = flag.Int("n", 200, "requests per pass (random workload)")
		parallel   = flag.Int("parallel", 8, "concurrent workers")
		nodes      = flag.Int("nodes", 0, "random src/dst drawn from [0, nodes); 0 = ask the server's /stats")
		pairsFile  = flag.String("pairs", "", "file with explicit 'src dst' lines (overrides -n/-nodes)")
		mode       = flag.String("mode", "query", "query (shortest path) or connected (reachability)")
		api        = flag.String("api", "legacy", "wire surface: legacy (GET /query) or v1 (POST /v1/query)")
		engine     = flag.String("engine", "", "per-request engine (empty = server default)")
		seed       = flag.Int64("seed", 1, "random workload seed")
		repeat     = flag.Int("repeat", 1, "passes over the same workload (>1 exercises the leg cache)")
		expectUp   = flag.Bool("expect-reachable", false, "fail on any unreachable answer (oracle for connected graphs)")
		minHitRate = flag.Float64("min-hit-rate", -1, "fail if the leg-cache hit rate over the run is below this (-1 = no check)")
		writeRate  = flag.Float64("write-rate", 0, "fraction of slots that fire /v1/update write transactions instead of queries (answer-invariant heavy-edge insert+delete)")
	)
	flag.Parse()

	cfg := server.LoadConfig{
		BaseURL:         strings.TrimRight(*addr, "/"),
		Requests:        *n,
		Parallel:        *parallel,
		Nodes:           *nodes,
		Engine:          *engine,
		Mode:            *mode,
		API:             *api,
		Seed:            *seed,
		Repeat:          *repeat,
		ExpectReachable: *expectUp,
		WriteRate:       *writeRate,
	}
	if *pairsFile != "" {
		pairs, err := readPairs(*pairsFile)
		if err != nil {
			fatal(err)
		}
		cfg.Pairs = pairs
	} else if cfg.Nodes <= 0 {
		st, err := server.FetchStats(cfg.BaseURL)
		if err != nil {
			fatal(fmt.Errorf("discovering node count from /stats: %v", err))
		}
		cfg.Nodes = st.Nodes
	}
	rep, err := server.RunLoad(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Format())

	failed := false
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "tcload: FAIL: %d request errors\n", rep.Errors)
		failed = true
	}
	if rep.Mismatches > 0 {
		fmt.Fprintf(os.Stderr, "tcload: FAIL: %d answer mismatches\n", rep.Mismatches)
		failed = true
	}
	if *minHitRate >= 0 && rep.HitRate < *minHitRate {
		fmt.Fprintf(os.Stderr, "tcload: FAIL: leg-cache hit rate %.3f below floor %.3f\n", rep.HitRate, *minHitRate)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// readPairs parses the explicit workload file.
func readPairs(path string) ([][2]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pairs [][2]int
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var src, dst int
		if _, err := fmt.Sscanf(text, "%d %d", &src, &dst); err != nil {
			return nil, fmt.Errorf("%s:%d: bad pair %q: %v", path, line, text, err)
		}
		pairs = append(pairs, [2]int{src, dst})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("%s: no pairs", path)
	}
	return pairs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcload:", err)
	os.Exit(1)
}
