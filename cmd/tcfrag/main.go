// Command tcfrag fragments a graph with one of the ICDE'93 algorithms
// and reports the paper's fragmentation characteristics (F, DS, AF,
// ADS, cycle count).
//
// Usage:
//
//	tcfrag -in graph.txt -alg bea -threshold 3 -o frags.txt
//	tcfrag -in graph.txt -alg center -fragments 4 -distributed
//	tcfrag -in graph.txt -alg linear -fragments 4 -start-count 3 -axis y
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fragment"
	"repro/internal/fragment/auto"
	"repro/internal/fragment/bea"
	"repro/internal/fragment/center"
	"repro/internal/fragment/linear"
	"repro/internal/graph"
)

func main() {
	var (
		in        = flag.String("in", "", "input graph file (required)")
		alg       = flag.String("alg", "center", "algorithm: center, bea, linear or auto")
		frags     = flag.Int("fragments", 4, "number of fragments (center, linear)")
		seed      = flag.Int64("seed", 1, "seed for random center selection")
		distrib   = flag.Bool("distributed", false, "center: spread centers by coordinates (§4.2.1)")
		smallest  = flag.Bool("smallest-first", false, "center: grow the smallest fragment instead of round-robin")
		threshold = flag.Int("threshold", 0, "bea: split threshold (0 = default 3)")
		minBlock  = flag.Int("min-block", 0, "bea: minimum connections per block before splitting")
		localMin  = flag.Bool("local-min", false, "bea: split at local minima instead of the threshold rule")
		starts    = flag.Int("starts", 0, "bea: starting columns to try (0 = all)")
		startCnt  = flag.Int("start-count", 1, "linear: number of start nodes s")
		axis      = flag.String("axis", "x", "linear: sweep axis, x or y")
		out       = flag.String("o", "", "write the fragmentation to this file")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	g, err := graph.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var fr *fragment.Fragmentation
	switch *alg {
	case "center":
		variant := center.RoundRobin
		if *smallest {
			variant = center.SmallestFirst
		}
		fr, err = center.Fragment(g, center.Options{
			NumFragments: *frags,
			Distributed:  *distrib,
			Variant:      variant,
			Seed:         *seed,
		})
	case "bea":
		mode := bea.ThresholdMode
		if *localMin {
			mode = bea.LocalMinimumMode
		}
		fr, err = bea.Fragment(g, bea.Options{
			Threshold:     *threshold,
			MinBlockEdges: *minBlock,
			Mode:          mode,
			Starts:        *starts,
		})
	case "linear":
		ax := linear.XAxis
		if *axis == "y" {
			ax = linear.YAxis
		} else if *axis != "x" {
			fatal(fmt.Errorf("unknown -axis %q (want x or y)", *axis))
		}
		var res *linear.Result
		res, err = linear.Fragment(g, linear.Options{
			NumFragments: *frags,
			StartCount:   *startCnt,
			Axis:         ax,
		})
		if err == nil {
			fr = res.Fragmentation
		}
	case "auto":
		var cands []auto.Candidate
		cands, err = auto.Choose(g, *frags, auto.DefaultWeights(), *seed)
		if err == nil {
			fmt.Println("candidates (best first):")
			for _, c := range cands {
				fmt.Printf("  %-13s score %.3f  %s\n", c.Name, c.Score, c.C)
			}
			fr = cands[0].Fragmentation
		}
	default:
		err = fmt.Errorf("unknown -alg %q (want center, bea, linear or auto)", *alg)
	}
	if err != nil {
		fatal(err)
	}

	c := fragment.Measure(fr)
	fmt.Println(c)
	for _, frag := range fr.Fragments() {
		fmt.Printf("  fragment %d: %d edges, %d nodes\n", frag.ID, frag.Size(), frag.NumNodes())
	}
	for p, ds := range fr.DisconnectionSets() {
		fmt.Printf("  DS%d%d: %d nodes\n", p.I, p.J, len(ds))
	}

	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		if err := fr.Write(of); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcfrag:", err)
	os.Exit(1)
}
